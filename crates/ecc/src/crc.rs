//! Table-driven cyclic redundancy checks.
//!
//! MILR's 2-D error coding (paper §IV-B-c) computes CRCs over sets of 4
//! parameters. CRC-32 (IEEE, reflected 0xEDB88320) is the default used by
//! [`Crc2d`](crate::Crc2d); CRC-16 and CRC-8 exist for the
//! storage-overhead ablation — a smaller code shrinks MILR's metadata at
//! the price of a higher silent-collision probability.
//!
//! # Kernels
//!
//! All three polynomials run slice-by-8: eight 256-entry tables consume
//! 8 input bytes per iteration, turning the byte-serial table walk into
//! eight independent lookups the CPU can overlap (the classic Intel
//! "slicing-by-8" construction — CRC tables are GF(2)-linear, so
//! `T[x ^ y] = T[x] ^ T[y]` and the per-byte dependency chain folds into
//! one XOR tree per block). The original byte-/bit-serial
//! implementations live in [`scalar`] and stay the bit-equivalence
//! reference for tests and `kernel_bench`.

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32Hasher::new();
    h.update(data);
    h.finalize()
}

/// Incremental CRC-32 hasher.
///
/// ```
/// use milr_ecc::{crc32, Crc32Hasher};
///
/// let mut h = Crc32Hasher::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), crc32(b"hello world"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32Hasher {
    state: u32,
}

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Slicing tables: `T[0]` is the classic byte table; `T[k][b]` advances
/// `T[k-1][b]` by one zero byte, so `T[k][b]` is the CRC contribution of
/// byte `b` seen `k` positions before the end of an 8-byte block.
const fn build_crc32_slices() -> [[u32; 256]; 8] {
    let t0 = build_crc32_table();
    let mut slices = [[0u32; 256]; 8];
    slices[0] = t0;
    let mut k = 1;
    while k < 8 {
        let mut b = 0;
        while b < 256 {
            let prev = slices[k - 1][b];
            slices[k][b] = (prev >> 8) ^ t0[(prev & 0xFF) as usize];
            b += 1;
        }
        k += 1;
    }
    slices
}

static CRC32_SLICES: [[u32; 256]; 8] = build_crc32_slices();

impl Crc32Hasher {
    /// Creates a hasher with the standard initial state.
    pub fn new() -> Self {
        Crc32Hasher { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the hasher.
    ///
    /// Processes 8 bytes per iteration via slice-by-8; the sub-8-byte
    /// tail falls back to the single-table step.
    pub fn update(&mut self, data: &[u8]) {
        let t = &CRC32_SLICES;
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
            crc = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][chunk[4] as usize]
                ^ t[2][chunk[5] as usize]
                ^ t[1][chunk[6] as usize]
                ^ t[0][chunk[7] as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finishes and returns the checksum.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32Hasher {
    fn default() -> Self {
        Crc32Hasher::new()
    }
}

const fn build_crc16_table() -> [u16; 256] {
    let mut table = [0u16; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = (i as u16) << 8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC16_TABLE: [u16; 256] = build_crc16_table();

/// Slicing tables for the non-reflected CRC-16: `S[0]` is the classic
/// byte table, `S[k][b]` advances `S[k-1][b]` by one zero byte
/// (`(s << 8) ^ T[s >> 8]`).
const fn build_crc16_slices() -> [[u16; 256]; 8] {
    let t0 = build_crc16_table();
    let mut slices = [[0u16; 256]; 8];
    slices[0] = t0;
    let mut k = 1;
    while k < 8 {
        let mut b = 0;
        while b < 256 {
            let prev = slices[k - 1][b];
            slices[k][b] = (prev << 8) ^ t0[(prev >> 8) as usize];
            b += 1;
        }
        k += 1;
    }
    slices
}

static CRC16_SLICES: [[u16; 256]; 8] = build_crc16_slices();

/// CRC-16/CCITT-FALSE (polynomial `0x1021`, init `0xFFFF`).
///
/// Slice-by-8: the 16-bit state folds into the first two bytes of each
/// 8-byte block, then the block is eight independent table lookups.
pub fn crc16(data: &[u8]) -> u16 {
    let s = &CRC16_SLICES;
    let mut crc: u16 = 0xFFFF;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        crc = s[7][(chunk[0] ^ (crc >> 8) as u8) as usize]
            ^ s[6][(chunk[1] ^ (crc & 0xFF) as u8) as usize]
            ^ s[5][chunk[2] as usize]
            ^ s[4][chunk[3] as usize]
            ^ s[3][chunk[4] as usize]
            ^ s[2][chunk[5] as usize]
            ^ s[1][chunk[6] as usize]
            ^ s[0][chunk[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc << 8) ^ CRC16_TABLE[(((crc >> 8) as u8) ^ b) as usize];
    }
    crc
}

const fn build_crc8_table() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC8_TABLE: [u8; 256] = build_crc8_table();

/// Slicing tables for CRC-8: advancing an 8-bit state by one zero byte
/// is just another table pass, so `S[k] = T` composed `k + 1` times.
const fn build_crc8_slices() -> [[u8; 256]; 8] {
    let t0 = build_crc8_table();
    let mut slices = [[0u8; 256]; 8];
    slices[0] = t0;
    let mut k = 1;
    while k < 8 {
        let mut b = 0;
        while b < 256 {
            slices[k][b] = t0[slices[k - 1][b] as usize];
            b += 1;
        }
        k += 1;
    }
    slices
}

static CRC8_SLICES: [[u8; 256]; 8] = build_crc8_slices();

/// CRC-8 (polynomial `0x07`, init `0x00`).
///
/// Slice-by-8: the whole 8-bit state folds into the block's first byte,
/// leaving eight independent lookups per 8-byte block.
pub fn crc8(data: &[u8]) -> u8 {
    let s = &CRC8_SLICES;
    let mut crc: u8 = 0;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        crc = s[7][(chunk[0] ^ crc) as usize]
            ^ s[6][chunk[1] as usize]
            ^ s[5][chunk[2] as usize]
            ^ s[4][chunk[3] as usize]
            ^ s[3][chunk[4] as usize]
            ^ s[2][chunk[5] as usize]
            ^ s[1][chunk[6] as usize]
            ^ s[0][chunk[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = CRC8_TABLE[(crc ^ b) as usize];
    }
    crc
}

/// Scalar reference kernels.
///
/// Bit-for-bit definitions of the CRC primitives, kept as the ground
/// truth the optimized kernels are proptested against and as the
/// baseline side of `kernel_bench`.
pub mod scalar {
    static CRC32_TABLE: [u32; 256] = super::build_crc32_table();

    /// Byte-at-a-time single-table CRC-32 (reference).
    pub fn crc32(data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        crc ^ 0xFFFF_FFFF
    }

    /// Bit-at-a-time CRC-16/CCITT-FALSE (reference).
    pub fn crc16(data: &[u8]) -> u16 {
        let mut crc: u16 = 0xFFFF;
        for &b in data {
            crc ^= (b as u16) << 8;
            for _ in 0..8 {
                crc = if crc & 0x8000 != 0 {
                    (crc << 1) ^ 0x1021
                } else {
                    crc << 1
                };
            }
        }
        crc
    }

    /// Bit-at-a-time CRC-8 (reference).
    pub fn crc8(data: &[u8]) -> u8 {
        let mut crc: u8 = 0;
        for &b in data {
            crc ^= b;
            for _ in 0..8 {
                crc = if crc & 0x80 != 0 {
                    (crc << 1) ^ 0x07
                } else {
                    crc << 1
                };
            }
        }
        crc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE check value.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn crc8_known_vector() {
        // CRC-8 (SMBus) check value.
        assert_eq!(crc8(b"123456789"), 0xF4);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in [0usize, 1, 10, data.len()] {
            let mut h = Crc32Hasher::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), crc32(data));
        }
    }

    #[test]
    fn default_equals_new() {
        assert_eq!(Crc32Hasher::default(), Crc32Hasher::new());
    }

    proptest! {
        #[test]
        fn single_bit_flip_changes_crc32(
            data in proptest::collection::vec(proptest::num::u8::ANY, 1..64),
            flip in 0usize..512,
        ) {
            let mut corrupted = data.clone();
            let bit = flip % (data.len() * 8);
            corrupted[bit / 8] ^= 1 << (bit % 8);
            prop_assert_ne!(crc32(&data), crc32(&corrupted));
        }

        #[test]
        fn crc_is_deterministic(data in proptest::collection::vec(proptest::num::u8::ANY, 0..64)) {
            prop_assert_eq!(crc32(&data), crc32(&data));
            prop_assert_eq!(crc16(&data), crc16(&data));
            prop_assert_eq!(crc8(&data), crc8(&data));
        }

        // Bit-equivalence: the slice-by-8 / table kernels must match the
        // scalar references on arbitrary inputs, including lengths that
        // exercise both the 8-byte body and every tail length.
        #[test]
        fn optimized_matches_scalar(
            data in proptest::collection::vec(proptest::num::u8::ANY, 0..257),
        ) {
            prop_assert_eq!(crc32(&data), scalar::crc32(&data));
            prop_assert_eq!(crc16(&data), scalar::crc16(&data));
            prop_assert_eq!(crc8(&data), scalar::crc8(&data));
        }

        // Incremental updates with arbitrary split points must agree with
        // the one-shot kernel (split may land mid-8-byte-block).
        #[test]
        fn incremental_split_equivalence(
            data in proptest::collection::vec(proptest::num::u8::ANY, 0..128),
            split in 0usize..128,
        ) {
            let split = split.min(data.len());
            let mut h = Crc32Hasher::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), scalar::crc32(&data));
        }
    }
}
