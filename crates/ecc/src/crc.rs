//! Table-driven cyclic redundancy checks.
//!
//! MILR's 2-D error coding (paper §IV-B-c) computes CRCs over sets of 4
//! parameters. CRC-32 (IEEE, reflected 0xEDB88320) is the default used by
//! [`Crc2d`](crate::Crc2d); CRC-16 and CRC-8 exist for the
//! storage-overhead ablation — a smaller code shrinks MILR's metadata at
//! the price of a higher silent-collision probability.

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32Hasher::new();
    h.update(data);
    h.finalize()
}

/// Incremental CRC-32 hasher.
///
/// ```
/// use milr_ecc::{crc32, Crc32Hasher};
///
/// let mut h = Crc32Hasher::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), crc32(b"hello world"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32Hasher {
    state: u32,
}

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = build_crc32_table();

impl Crc32Hasher {
    /// Creates a hasher with the standard initial state.
    pub fn new() -> Self {
        Crc32Hasher { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finishes and returns the checksum.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32Hasher {
    fn default() -> Self {
        Crc32Hasher::new()
    }
}

/// CRC-16/CCITT-FALSE (polynomial `0x1021`, init `0xFFFF`).
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in data {
        crc ^= (b as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// CRC-8 (polynomial `0x07`, init `0x00`).
pub fn crc8(data: &[u8]) -> u8 {
    let mut crc: u8 = 0;
    for &b in data {
        crc ^= b;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE check value.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn crc8_known_vector() {
        // CRC-8 (SMBus) check value.
        assert_eq!(crc8(b"123456789"), 0xF4);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in [0usize, 1, 10, data.len()] {
            let mut h = Crc32Hasher::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), crc32(data));
        }
    }

    #[test]
    fn default_equals_new() {
        assert_eq!(Crc32Hasher::default(), Crc32Hasher::new());
    }

    proptest! {
        #[test]
        fn single_bit_flip_changes_crc32(
            data in proptest::collection::vec(proptest::num::u8::ANY, 1..64),
            flip in 0usize..512,
        ) {
            let mut corrupted = data.clone();
            let bit = flip % (data.len() * 8);
            corrupted[bit / 8] ^= 1 << (bit % 8);
            prop_assert_ne!(crc32(&data), crc32(&corrupted));
        }

        #[test]
        fn crc_is_deterministic(data in proptest::collection::vec(proptest::num::u8::ANY, 0..64)) {
            prop_assert_eq!(crc32(&data), crc32(&data));
            prop_assert_eq!(crc16(&data), crc16(&data));
            prop_assert_eq!(crc8(&data), crc8(&data));
        }
    }
}
