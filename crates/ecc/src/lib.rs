//! # milr-ecc
//!
//! Error-coding substrates for the MILR reproduction.
//!
//! Two distinct codes appear in the paper:
//!
//! * **SECDED Hamming (39,32)** — the baseline MILR is compared against
//!   throughout §V: "This (39,32) code requires 7 additional ECC bits for
//!   each 32-bit word that coincides with a single parameter, allowing
//!   error recovery for any parameter if a single bit of it is corrupted.
//!   In the case of more than 1 bit error no correction occurs and
//!   interrupts is not raised." [`Secded`] implements exactly that
//!   contract, and [`SecdedMemory`] wraps a weight buffer the way
//!   ECC DRAM would.
//!
//! * **2-D CRC error coding** (§IV-B-c, Fig. 4) — MILR's mechanism for
//!   pinpointing *which* weights of a convolution filter tensor are
//!   corrupted, so that partial recovery can shrink the unknown set of
//!   its linear system. [`Crc2d`] implements the row/column CRC grid over
//!   sets of 4 parameters; [`crc32`]/[`crc16`]/[`crc8`] are the
//!   table-driven primitives.
//!
//! ```
//! use milr_ecc::{DecodeOutcome, Secded};
//!
//! let code = Secded::encode(0xDEAD_BEEF);
//! // Flip one bit of the 39-bit codeword: corrected.
//! match Secded::decode(code ^ (1 << 17)) {
//!     DecodeOutcome::Corrected { data, .. } => assert_eq!(data, 0xDEAD_BEEF),
//!     other => panic!("expected correction, got {other:?}"),
//! }
//! ```

#![deny(missing_docs)]

mod crc;
mod crc2d;
mod memory;
pub mod ring;
mod secded;

pub use crc::{crc16, crc32, crc8, Crc32Hasher};
pub use crc2d::{Crc2d, Crc2dCodes};
pub use memory::{ScrubReport, SecdedMemory};
pub use secded::{DecodeOutcome, Secded};

/// Scalar reference kernels.
///
/// The original byte-/bit-serial implementations every optimized kernel
/// is proptested against, re-exported in one namespace so `kernel_bench`
/// can measure scalar-vs-optimized throughput at runtime.
pub mod scalar {
    pub use crate::crc::scalar::{crc16, crc32, crc8};
    pub use crate::secded::scalar::{decode as secded_decode, encode as secded_encode};
}
