use crate::{crc32, Crc32Hasher};
use serde::{Deserialize, Serialize};

/// CRC-32 over the little-endian bytes of a run of cells, gathered
/// through a stack buffer in pieces wide enough for the slice-by-8
/// kernel. No heap allocation.
fn crc_cells(cells: &[f32]) -> u32 {
    let mut buf = [0u8; 64];
    let mut h = Crc32Hasher::new();
    for piece in cells.chunks(16) {
        for (b, &v) in buf.chunks_exact_mut(4).zip(piece) {
            b.copy_from_slice(&v.to_le_bytes());
        }
        h.update(&buf[..piece.len() * 4]);
    }
    h.finalize()
}

/// Configuration for two-dimensional CRC error coding over a 2-D grid of
/// `f32` parameters.
///
/// This is the paper's adaptation of Kim et al.'s 2-D error coding
/// (§IV-B-c, Fig. 4): CRCs are computed *horizontally* over sets of
/// [`group`](Crc2d::group) parameters along each row and *vertically*
/// over sets along each column. A corrupted weight invalidates exactly
/// one row code and one column code; intersecting the mismatched codes
/// pinpoints candidate cells. MILR applies this to each of the `F²`
/// `(Z, Y)` slices of a convolution filter tensor so that partial
/// recovery can solve only for the flagged weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crc2d {
    rows: usize,
    cols: usize,
    group: usize,
}

/// Stored CRC codes for one grid, produced by [`Crc2d::encode`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crc2dCodes {
    config: Crc2d,
    /// `rows × ceil(cols/group)` codes, row-major.
    row_codes: Vec<u32>,
    /// `cols × ceil(rows/group)` codes, column-major.
    col_codes: Vec<u32>,
}

impl Crc2d {
    /// Default parameter-group width used by the paper ("sets of 4
    /// parameters").
    pub const PAPER_GROUP: usize = 4;

    /// Creates a configuration with the paper's group width of 4.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self::with_group(rows, cols, Self::PAPER_GROUP)
    }

    /// Creates a configuration with an explicit group width (for the
    /// storage/false-positive ablation).
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn with_group(rows: usize, cols: usize, group: usize) -> Self {
        assert!(rows > 0 && cols > 0 && group > 0, "grid must be non-empty");
        Crc2d { rows, cols, group }
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Parameters per CRC group.
    pub fn group(&self) -> usize {
        self.group
    }

    fn row_chunks(&self) -> usize {
        self.cols.div_ceil(self.group)
    }

    fn col_chunks(&self) -> usize {
        self.rows.div_ceil(self.group)
    }

    /// Encodes a row-major `rows × cols` grid of parameters.
    ///
    /// Visits the grid **once**, row-major, producing both code axes in
    /// the same pass: row chunks hash contiguous cells through the
    /// slice-by-8 CRC kernel, while one running CRC state per column
    /// absorbs each row's cells and finalizes at every column-chunk
    /// boundary. The only allocations are the two output code vectors
    /// plus the per-column state — the old per-chunk scratch `Vec`s (one
    /// per code, with a second strided sweep over the whole grid for the
    /// column axis) are gone.
    ///
    /// # Panics
    ///
    /// Panics if `grid.len() != rows * cols`.
    pub fn encode(&self, grid: &[f32]) -> Crc2dCodes {
        assert_eq!(grid.len(), self.rows * self.cols, "grid size mismatch");
        let rc = self.row_chunks();
        let cc = self.col_chunks();
        let mut row_codes = vec![0u32; self.rows * rc];
        let mut col_codes = vec![0u32; self.cols * cc];
        let mut col_hashers = vec![Crc32Hasher::new(); self.cols];
        for r in 0..self.rows {
            let row = &grid[r * self.cols..(r + 1) * self.cols];
            for (chunk, cells) in row.chunks(self.group).enumerate() {
                row_codes[r * rc + chunk] = crc_cells(cells);
            }
            for (h, &v) in col_hashers.iter_mut().zip(row) {
                h.update(&v.to_le_bytes());
            }
            if (r + 1) % self.group == 0 || r + 1 == self.rows {
                let col_chunk = r / self.group;
                for (c, h) in col_hashers.iter_mut().enumerate() {
                    col_codes[c * cc + col_chunk] = h.finalize();
                    *h = Crc32Hasher::new();
                }
            }
        }
        Crc2dCodes {
            config: *self,
            row_codes,
            col_codes,
        }
    }

    /// Scalar reference encode: the original two independent sweeps
    /// (row-major then column-major) with per-chunk byte gathering.
    ///
    /// Kept as the bit-equivalence ground truth for the single-pass
    /// [`encode`](Crc2d::encode) and as the baseline side of
    /// `kernel_bench`.
    ///
    /// # Panics
    ///
    /// Panics if `grid.len() != rows * cols`.
    pub fn encode_scalar(&self, grid: &[f32]) -> Crc2dCodes {
        assert_eq!(grid.len(), self.rows * self.cols, "grid size mismatch");
        let mut row_codes = Vec::with_capacity(self.rows * self.row_chunks());
        for r in 0..self.rows {
            for chunk in 0..self.row_chunks() {
                let start = chunk * self.group;
                let end = (start + self.group).min(self.cols);
                let mut bytes = Vec::with_capacity((end - start) * 4);
                for c in start..end {
                    bytes.extend_from_slice(&grid[r * self.cols + c].to_le_bytes());
                }
                row_codes.push(crc32(&bytes));
            }
        }
        let mut col_codes = Vec::with_capacity(self.cols * self.col_chunks());
        for c in 0..self.cols {
            for chunk in 0..self.col_chunks() {
                let start = chunk * self.group;
                let end = (start + self.group).min(self.rows);
                let mut bytes = Vec::with_capacity((end - start) * 4);
                for r in start..end {
                    bytes.extend_from_slice(&grid[r * self.cols + c].to_le_bytes());
                }
                col_codes.push(crc32(&bytes));
            }
        }
        Crc2dCodes {
            config: *self,
            row_codes,
            col_codes,
        }
    }
}

impl Crc2dCodes {
    /// The configuration these codes were produced with.
    pub fn config(&self) -> &Crc2d {
        &self.config
    }

    /// Stored horizontal codes, row-major (`rows × ceil(cols/group)`).
    pub fn row_codes(&self) -> &[u32] {
        &self.row_codes
    }

    /// Stored vertical codes, column-major (`cols × ceil(rows/group)`).
    pub fn col_codes(&self) -> &[u32] {
        &self.col_codes
    }

    /// Reassembles codes from their stored parts (the persistence path).
    ///
    /// # Errors
    ///
    /// Returns `Err` with a description when the code counts do not
    /// match the configuration's geometry.
    pub fn from_parts(
        config: Crc2d,
        row_codes: Vec<u32>,
        col_codes: Vec<u32>,
    ) -> Result<Self, String> {
        if row_codes.len() != config.rows * config.row_chunks() {
            return Err(format!(
                "expected {} row codes, got {}",
                config.rows * config.row_chunks(),
                row_codes.len()
            ));
        }
        if col_codes.len() != config.cols * config.col_chunks() {
            return Err(format!(
                "expected {} col codes, got {}",
                config.cols * config.col_chunks(),
                col_codes.len()
            ));
        }
        Ok(Crc2dCodes {
            config,
            row_codes,
            col_codes,
        })
    }

    /// Bytes of error-resistant storage these codes occupy (4 bytes per
    /// CRC-32), for the storage-overhead accounting of Tables V/VII/IX.
    pub fn storage_bytes(&self) -> usize {
        (self.row_codes.len() + self.col_codes.len()) * 4
    }

    /// True when every stored code matches the grid.
    ///
    /// # Panics
    ///
    /// Panics if `grid` does not match the configured dimensions.
    pub fn is_clean(&self, grid: &[f32]) -> bool {
        self.config.encode(grid) == *self
    }

    /// True when the **row** chunk containing `(r, c)` matches its
    /// stored code. One matching axis is already a strong (CRC-32)
    /// certificate for a candidate weight; MILR's snap uses a single
    /// axis when the other axis's chunk still contains unresolved
    /// cells (e.g. a garbled cipher block flags several cells of one
    /// row chunk at once).
    ///
    /// # Panics
    ///
    /// Panics if the grid or the coordinates are out of range.
    pub fn row_consistent(&self, grid: &[f32], r: usize, c: usize) -> bool {
        let cfg = &self.config;
        assert_eq!(grid.len(), cfg.rows * cfg.cols, "grid size mismatch");
        assert!(r < cfg.rows && c < cfg.cols, "cell out of range");
        let row_chunk = c / cfg.group;
        let start = row_chunk * cfg.group;
        let end = (start + cfg.group).min(cfg.cols);
        let cells = &grid[r * cfg.cols + start..r * cfg.cols + end];
        crc_cells(cells) == self.row_codes[r * cfg.row_chunks() + row_chunk]
    }

    /// True when the **column** chunk containing `(r, c)` matches its
    /// stored code (see [`row_consistent`](Crc2dCodes::row_consistent)).
    ///
    /// # Panics
    ///
    /// Panics if the grid or the coordinates are out of range.
    pub fn col_consistent(&self, grid: &[f32], r: usize, c: usize) -> bool {
        let cfg = &self.config;
        assert_eq!(grid.len(), cfg.rows * cfg.cols, "grid size mismatch");
        assert!(r < cfg.rows && c < cfg.cols, "cell out of range");
        let col_chunk = r / cfg.group;
        let start = col_chunk * cfg.group;
        let end = (start + cfg.group).min(cfg.rows);
        let mut h = Crc32Hasher::new();
        for rr in start..end {
            h.update(&grid[rr * cfg.cols + c].to_le_bytes());
        }
        h.finalize() == self.col_codes[c * cfg.col_chunks() + col_chunk]
    }

    /// True when the row chunk and column chunk containing `(r, c)` both
    /// match their stored codes — used by MILR to snap re-solved weights
    /// to the exact golden bits (a recovered value one ulp off flips
    /// both codes).
    ///
    /// # Panics
    ///
    /// Panics if the grid or the coordinates are out of range.
    pub fn cell_consistent(&self, grid: &[f32], r: usize, c: usize) -> bool {
        self.row_consistent(grid, r, c) && self.col_consistent(grid, r, c)
    }

    /// Returns the `(row, col)` cells suspected of corruption, by
    /// intersecting mismatched horizontal and vertical codes.
    ///
    /// The result is a superset of the truly corrupted cells whenever
    /// multiple errors share rows/columns (the false positives whose rate
    /// the paper reports as low); it can miss errors only on a CRC-32
    /// collision.
    ///
    /// # Panics
    ///
    /// Panics if `grid` does not match the configured dimensions.
    pub fn locate_errors(&self, grid: &[f32]) -> Vec<(usize, usize)> {
        let fresh = self.config.encode(grid);
        let cfg = &self.config;
        let rc = cfg.row_chunks();
        let cc = cfg.col_chunks();
        // bad_row[r][chunk] / bad_col[c][chunk] mismatch bitmaps.
        let bad_row: Vec<bool> = self
            .row_codes
            .iter()
            .zip(fresh.row_codes.iter())
            .map(|(a, b)| a != b)
            .collect();
        let bad_col: Vec<bool> = self
            .col_codes
            .iter()
            .zip(fresh.col_codes.iter())
            .map(|(a, b)| a != b)
            .collect();
        let mut cells = Vec::new();
        for r in 0..cfg.rows {
            for c in 0..cfg.cols {
                let row_chunk = c / cfg.group;
                let col_chunk = r / cfg.group;
                if bad_row[r * rc + row_chunk] && bad_col[c * cc + col_chunk] {
                    cells.push((r, c));
                }
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid(rows: usize, cols: usize) -> Vec<f32> {
        (0..rows * cols).map(|i| i as f32 * 0.37 - 3.0).collect()
    }

    #[test]
    fn clean_grid_reports_no_errors() {
        let g = grid(8, 8);
        let codes = Crc2d::new(8, 8).encode(&g);
        assert!(codes.is_clean(&g));
        assert!(codes.locate_errors(&g).is_empty());
    }

    #[test]
    fn single_error_located_exactly() {
        let g = grid(8, 12);
        let codes = Crc2d::new(8, 12).encode(&g);
        let mut bad = g.clone();
        bad[3 * 12 + 7] = f32::from_bits(bad[3 * 12 + 7].to_bits() ^ 0x0040_0000);
        let cells = codes.locate_errors(&bad);
        assert_eq!(cells, vec![(3, 7)]);
    }

    #[test]
    fn multiple_scattered_errors_are_covered() {
        let g = grid(16, 16);
        let codes = Crc2d::new(16, 16).encode(&g);
        let mut bad = g.clone();
        let corrupted = [(0usize, 0usize), (5, 9), (12, 3), (15, 15)];
        for &(r, c) in &corrupted {
            bad[r * 16 + c] += 1.0;
        }
        let cells = codes.locate_errors(&bad);
        for &(r, c) in &corrupted {
            assert!(cells.contains(&(r, c)), "missing ({r},{c}) in {cells:?}");
        }
    }

    #[test]
    fn aligned_errors_produce_false_positives_not_misses() {
        // Two errors in the same row chunk and two columns sharing a
        // column chunk: the intersection may flag extra cells but never
        // misses the real ones.
        let g = grid(8, 8);
        let codes = Crc2d::new(8, 8).encode(&g);
        let mut bad = g.clone();
        let corrupted = [(1usize, 2usize), (2, 1)];
        for &(r, c) in &corrupted {
            bad[r * 8 + c] -= 2.5;
        }
        let cells = codes.locate_errors(&bad);
        for &(r, c) in &corrupted {
            assert!(cells.contains(&(r, c)));
        }
        // (1,1) and (2,2) share the mismatched chunks: allowed false
        // positives.
        assert!(cells.len() >= 2);
    }

    #[test]
    fn non_multiple_dimensions_handled() {
        // 5x7 with group 4 exercises the ragged final chunks.
        let g = grid(5, 7);
        let codes = Crc2d::new(5, 7).encode(&g);
        let mut bad = g.clone();
        bad[4 * 7 + 6] *= -1.0;
        assert_eq!(codes.locate_errors(&bad), vec![(4, 6)]);
    }

    #[test]
    fn storage_accounting() {
        let codes = Crc2d::new(8, 8).encode(&grid(8, 8));
        // 8 rows x 2 chunks + 8 cols x 2 chunks = 32 codes x 4 bytes.
        assert_eq!(codes.storage_bytes(), 128);
    }

    #[test]
    fn group_width_affects_storage() {
        let g = grid(8, 8);
        let g4 = Crc2d::with_group(8, 8, 4).encode(&g).storage_bytes();
        let g8 = Crc2d::with_group(8, 8, 8).encode(&g).storage_bytes();
        assert!(g8 < g4);
    }

    #[test]
    #[should_panic(expected = "grid size mismatch")]
    fn encode_panics_on_bad_grid() {
        Crc2d::new(2, 2).encode(&[0.0; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        // Bit-equivalence: the single-pass encode must produce exactly
        // the codes of the original double-sweep reference on arbitrary
        // geometries, including ragged final chunks and group 1.
        #[test]
        fn single_pass_matches_scalar(
            rows in 1usize..12,
            cols in 1usize..12,
            group in 1usize..7,
            seed in proptest::num::u32::ANY,
        ) {
            let g: Vec<f32> = (0..rows * cols)
                .map(|i| (i as f32 + seed as f32 * 1e-9) * 0.37 - 3.0)
                .collect();
            let cfg = Crc2d::with_group(rows, cols, group);
            prop_assert_eq!(cfg.encode(&g), cfg.encode_scalar(&g));
        }

        #[test]
        fn every_injected_error_is_flagged(
            rows in 2usize..10,
            cols in 2usize..10,
            errors in proptest::collection::vec((0usize..100, 0usize..100), 1..6),
        ) {
            let g = grid(rows, cols);
            let codes = Crc2d::new(rows, cols).encode(&g);
            let mut bad = g.clone();
            let mut truth = std::collections::HashSet::new();
            for &(er, ec) in &errors {
                let (r, c) = (er % rows, ec % cols);
                bad[r * cols + c] += 7.25;
                truth.insert((r, c));
            }
            // Cells whose value actually changed must all be flagged.
            let flagged: std::collections::HashSet<_> =
                codes.locate_errors(&bad).into_iter().collect();
            for (r, c) in truth {
                if bad[r * cols + c] != g[r * cols + c] {
                    prop_assert!(flagged.contains(&(r, c)), "missed ({r},{c})");
                }
            }
        }
    }
}

#[cfg(test)]
mod cell_tests {
    use super::*;

    #[test]
    fn cell_consistent_tracks_corruption() {
        let g: Vec<f32> = (0..64).map(|i| i as f32 * 0.3).collect();
        let codes = Crc2d::new(8, 8).encode(&g);
        assert!(codes.cell_consistent(&g, 3, 5));
        let mut bad = g.clone();
        bad[3 * 8 + 5] += 1.0;
        assert!(!codes.cell_consistent(&bad, 3, 5));
        // A cell sharing neither chunk is unaffected.
        assert!(codes.cell_consistent(&bad, 0, 0));
    }

    #[test]
    fn cell_consistent_detects_one_ulp() {
        let g: Vec<f32> = (0..16).map(|i| i as f32 + 0.125).collect();
        let codes = Crc2d::new(4, 4).encode(&g);
        let mut bad = g.clone();
        bad[5] = f32::from_bits(bad[5].to_bits() + 1);
        assert!(!codes.cell_consistent(&bad, 1, 1));
    }
}
