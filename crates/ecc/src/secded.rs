/// Single-error-correcting, double-error-detecting Hamming code (39,32).
///
/// The code word layout follows the classic extended Hamming
/// construction: bit positions `1..=38` hold parity bits at the powers of
/// two (1, 2, 4, 8, 16, 32) and data bits elsewhere; bit position 0 holds
/// the overall parity covering every other bit. Seven check bits protect
/// 32 data bits, matching the paper's "(39,32) code … 7 additional ECC
/// bits for each 32-bit word" (§V-A).
///
/// # Kernel
///
/// Encode and decode are word-parallel over the `u64` holding the code
/// word: the six Hamming parities are `popcount(word & MASK)` against
/// precomputed position masks, and the data bits scatter/gather through
/// five shift-and-mask moves exploiting the fact that the non-power-of-two
/// positions form exactly five contiguous runs (`3`, `5..=7`, `9..=15`,
/// `17..=31`, `33..=38`). No per-bit loops, no rebuilt position iterators.
/// The original bit-serial implementation survives in [`scalar`] as the
/// bit-equivalence reference.
///
/// The type is a namespace: both operations are stateless associated
/// functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Secded;

/// Outcome of decoding a 39-bit SECDED code word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// Code word was clean; data extracted.
    Clean {
        /// The stored 32-bit word.
        data: u32,
    },
    /// A single-bit error was detected and corrected.
    Corrected {
        /// The corrected 32-bit word.
        data: u32,
        /// Code-word bit position (0..39) that was repaired.
        bit: u8,
    },
    /// A double-bit error was detected; `data` is the best-effort
    /// (uncorrected) extraction. The paper's baseline raises no
    /// interrupt in this case, so the corrupted data flows onward —
    /// exactly how the evaluation treats multi-bit words.
    DoubleError {
        /// Best-effort extraction of the (still corrupt) data bits.
        data: u32,
    },
}

impl DecodeOutcome {
    /// The carried data word regardless of outcome.
    pub fn data(&self) -> u32 {
        match *self {
            DecodeOutcome::Clean { data }
            | DecodeOutcome::Corrected { data, .. }
            | DecodeOutcome::DoubleError { data } => data,
        }
    }

    /// True unless a double error was detected.
    pub fn is_reliable(&self) -> bool {
        !matches!(self, DecodeOutcome::DoubleError { .. })
    }
}

/// All 39 valid code-word bits.
const CODE_MASK: u64 = (1u64 << 39) - 1;

const fn build_data_positions() -> [u32; 32] {
    let mut out = [0u32; 32];
    let mut i = 0;
    let mut pos = 1u32;
    while pos < 39 {
        if !pos.is_power_of_two() {
            out[i] = pos;
            i += 1;
        }
        pos += 1;
    }
    out
}

/// Hot-loop alias of [`Secded::PARITY_MASKS`]: one table in static
/// memory instead of six inlined immediates per call site.
static PARITY_MASKS: [u64; 6] = Secded::PARITY_MASKS;

const fn build_parity_masks() -> [u64; 6] {
    let mut masks = [0u64; 6];
    let mut j = 0;
    while j < 6 {
        let p = 1u32 << j;
        let mut pos = 1u32;
        while pos < 39 {
            if pos & p != 0 {
                masks[j] |= 1u64 << pos;
            }
            pos += 1;
        }
        j += 1;
    }
    masks
}

impl Secded {
    /// Number of bits in a code word.
    pub const CODE_BITS: u32 = 39;
    /// Number of data bits per code word.
    pub const DATA_BITS: u32 = 32;
    /// Check bits per code word (Hamming + overall parity).
    pub const CHECK_BITS: u32 = 7;
    /// Data-bit positions (non powers of two in `1..=38`), in data-bit
    /// order — precomputed once at compile time instead of the old
    /// per-word iterator rebuild.
    pub const DATA_POSITIONS: [u32; 32] = build_data_positions();
    /// `PARITY_MASKS[j]` selects every code-word position in `1..=38`
    /// whose index has bit `j` set — the coverage set of Hamming parity
    /// `2^j`.
    pub const PARITY_MASKS: [u64; 6] = build_parity_masks();

    /// Scatters 32 data bits into the non-power-of-two code positions.
    ///
    /// The five contiguous data runs make this five shift/mask moves.
    #[inline]
    fn scatter(data: u32) -> u64 {
        let d = data as u64;
        ((d & 0x1) << 3)
            | (((d >> 1) & 0x7) << 5)
            | (((d >> 4) & 0x7F) << 9)
            | (((d >> 11) & 0x7FFF) << 17)
            | (((d >> 26) & 0x3F) << 33)
    }

    /// Gathers the 32 data bits back out of a code word (inverse of
    /// [`Secded::scatter`]).
    #[inline]
    fn extract(word: u64) -> u32 {
        (((word >> 3) & 0x1)
            | (((word >> 5) & 0x7) << 1)
            | (((word >> 9) & 0x7F) << 4)
            | (((word >> 17) & 0x7FFF) << 11)
            | (((word >> 33) & 0x3F) << 26)) as u32
    }

    /// Encodes a 32-bit word into a 39-bit code word (stored in the low
    /// bits of a `u64`).
    #[inline]
    pub fn encode(data: u32) -> u64 {
        let mut word = Self::scatter(data);
        // Hamming parities: each mask excludes all power-of-two
        // positions except its own (position 2^j has only bit j set), so
        // the six parities are independent of evaluation order.
        let mut j = 0;
        while j < 6 {
            let parity = ((word & PARITY_MASKS[j]).count_ones() & 1) as u64;
            word |= parity << (1u32 << j);
            j += 1;
        }
        // Overall parity at position 0 covers positions 1..=38; bit 0 is
        // still clear, so it is the whole word's population parity.
        word | (word.count_ones() & 1) as u64
    }

    /// Decodes a 39-bit code word, correcting a single-bit error and
    /// detecting (without correcting) double-bit errors.
    ///
    /// Errors of three or more bits are beyond the code's guarantees and
    /// may alias to any outcome — the same silent-corruption hazard the
    /// paper exploits to motivate plaintext-space correction.
    #[inline]
    pub fn decode(mut word: u64) -> DecodeOutcome {
        word &= CODE_MASK;
        let mut syndrome = 0u32;
        let mut j = 0;
        while j < 6 {
            syndrome |= ((word & PARITY_MASKS[j]).count_ones() & 1) << j;
            j += 1;
        }
        let overall = (word.count_ones() & 1) as u64;
        match (syndrome, overall) {
            (0, 0) => DecodeOutcome::Clean {
                data: Self::extract(word),
            },
            (0, _) => {
                // Overall parity bit itself flipped.
                DecodeOutcome::Corrected {
                    data: Self::extract(word),
                    bit: 0,
                }
            }
            (s, 1) if s < 39 => {
                word ^= 1 << s;
                DecodeOutcome::Corrected {
                    data: Self::extract(word),
                    bit: s as u8,
                }
            }
            // Syndrome nonzero with even overall parity => double error;
            // syndrome pointing past the code word => uncorrectable.
            _ => DecodeOutcome::DoubleError {
                data: Self::extract(word),
            },
        }
    }

    /// True when the code word would decode [`DecodeOutcome::Clean`] —
    /// the scrub fast path, skipping extraction and repair entirely.
    #[inline]
    pub fn is_clean(word: u64) -> bool {
        let word = word & CODE_MASK;
        let mut dirty = word.count_ones() & 1;
        let mut j = 0;
        while j < 6 {
            dirty |= (word & PARITY_MASKS[j]).count_ones() & 1;
            j += 1;
        }
        dirty == 0
    }
}

/// Scalar reference implementation.
///
/// The original bit-serial encode/decode, kept as the ground truth the
/// mask/popcount kernels are proptested against and as the baseline side
/// of `kernel_bench`. Bit-for-bit identical outcomes, ~20× slower.
pub mod scalar {
    use super::DecodeOutcome;

    /// Code-word positions 1..=38 that hold data bits (non powers of two).
    pub(crate) fn data_positions() -> impl Iterator<Item = u32> {
        (1u32..39).filter(|p| !p.is_power_of_two())
    }

    /// Bit-serial SECDED encode (reference).
    pub fn encode(data: u32) -> u64 {
        let mut word: u64 = 0;
        for (i, pos) in data_positions().enumerate() {
            if (data >> i) & 1 == 1 {
                word |= 1 << pos;
            }
        }
        for p in [1u32, 2, 4, 8, 16, 32] {
            let mut parity = 0u64;
            for pos in 1..39u32 {
                if pos & p != 0 {
                    parity ^= (word >> pos) & 1;
                }
            }
            word |= parity << p;
        }
        let mut overall = 0u64;
        for pos in 1..39u32 {
            overall ^= (word >> pos) & 1;
        }
        word |= overall;
        word
    }

    /// Bit-serial SECDED decode (reference).
    pub fn decode(mut word: u64) -> DecodeOutcome {
        word &= (1u64 << 39) - 1;
        let mut syndrome = 0u32;
        for p in [1u32, 2, 4, 8, 16, 32] {
            let mut parity = 0u64;
            for pos in 1..39u32 {
                if pos & p != 0 {
                    parity ^= (word >> pos) & 1;
                }
            }
            if parity != 0 {
                syndrome |= p;
            }
        }
        let mut overall = 0u64;
        for pos in 0..39u32 {
            overall ^= (word >> pos) & 1;
        }
        match (syndrome, overall) {
            (0, 0) => DecodeOutcome::Clean {
                data: extract(word),
            },
            (0, _) => DecodeOutcome::Corrected {
                data: extract(word),
                bit: 0,
            },
            (s, 1) if s < 39 => {
                word ^= 1 << s;
                DecodeOutcome::Corrected {
                    data: extract(word),
                    bit: s as u8,
                }
            }
            _ => DecodeOutcome::DoubleError {
                data: extract(word),
            },
        }
    }

    fn extract(word: u64) -> u32 {
        let mut data = 0u32;
        for (i, pos) in data_positions().enumerate() {
            if (word >> pos) & 1 == 1 {
                data |= 1 << i;
            }
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn code_geometry() {
        assert_eq!(Secded::CODE_BITS, 39);
        assert_eq!(Secded::DATA_BITS + Secded::CHECK_BITS, Secded::CODE_BITS);
        assert_eq!(scalar::data_positions().count(), 32);
    }

    #[test]
    fn static_tables_match_iterator() {
        let positions: Vec<u32> = scalar::data_positions().collect();
        assert_eq!(&Secded::DATA_POSITIONS[..], &positions[..]);
        for (j, &mask) in PARITY_MASKS.iter().enumerate() {
            let p = 1u32 << j;
            for pos in 0..64u32 {
                let expect = (1..39).contains(&pos) && pos & p != 0;
                assert_eq!((mask >> pos) & 1 == 1, expect, "mask {j} pos {pos}");
            }
        }
    }

    #[test]
    fn clean_roundtrip() {
        for data in [0u32, 1, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x8000_0001] {
            let word = Secded::encode(data);
            assert_eq!(Secded::decode(word), DecodeOutcome::Clean { data });
            assert!(Secded::is_clean(word));
        }
    }

    #[test]
    fn corrects_every_single_bit_flip() {
        let data = 0xA5A5_5A5A;
        let word = Secded::encode(data);
        for bit in 0..39 {
            let outcome = Secded::decode(word ^ (1 << bit));
            match outcome {
                DecodeOutcome::Corrected { data: d, bit: b } => {
                    assert_eq!(d, data, "bit {bit}");
                    assert_eq!(b as u32, bit);
                }
                other => panic!("bit {bit}: expected correction, got {other:?}"),
            }
            assert!(!Secded::is_clean(word ^ (1 << bit)));
        }
    }

    #[test]
    fn detects_every_double_bit_flip() {
        let data = 0x1234_5678;
        let word = Secded::encode(data);
        for a in 0..39u32 {
            for b in (a + 1)..39 {
                let outcome = Secded::decode(word ^ (1 << a) ^ (1 << b));
                assert!(
                    matches!(outcome, DecodeOutcome::DoubleError { .. }),
                    "bits {a},{b}: got {outcome:?}"
                );
            }
        }
    }

    #[test]
    fn outcome_accessors() {
        let clean = DecodeOutcome::Clean { data: 7 };
        assert_eq!(clean.data(), 7);
        assert!(clean.is_reliable());
        let double = DecodeOutcome::DoubleError { data: 9 };
        assert_eq!(double.data(), 9);
        assert!(!double.is_reliable());
    }

    #[test]
    fn whole_word_corruption_is_not_correctable_to_original() {
        // The PSEC scenario: all 32 data bits flipped (a whole-weight
        // error). SECDED must NOT return the original data — that is the
        // paper's core argument for MILR.
        let data = 0x0F0F_1234;
        let word = Secded::encode(data);
        let mut corrupted = word;
        for pos in scalar::data_positions() {
            corrupted ^= 1u64 << pos;
        }
        let outcome = Secded::decode(corrupted);
        assert_ne!(outcome.data(), data);
    }

    proptest! {
        #[test]
        fn roundtrip_any_word(data in proptest::num::u32::ANY) {
            prop_assert_eq!(
                Secded::decode(Secded::encode(data)),
                DecodeOutcome::Clean { data }
            );
        }

        #[test]
        fn single_flip_always_corrected(data in proptest::num::u32::ANY, bit in 0u32..39) {
            let word = Secded::encode(data) ^ (1u64 << bit);
            let outcome = Secded::decode(word);
            prop_assert_eq!(outcome.data(), data);
            prop_assert!(outcome.is_reliable());
        }

        #[test]
        fn double_flip_always_detected(
            data in proptest::num::u32::ANY,
            a in 0u32..39,
            b in 0u32..39,
        ) {
            prop_assume!(a != b);
            let word = Secded::encode(data) ^ (1u64 << a) ^ (1u64 << b);
            prop_assert!(!Secded::decode(word).is_reliable());
        }

        // Bit-equivalence: the mask/popcount kernels must agree with the
        // bit-serial reference on every input — clean words, arbitrary
        // garbage words, everything.
        #[test]
        fn encode_matches_scalar(data in proptest::num::u32::ANY) {
            prop_assert_eq!(Secded::encode(data), scalar::encode(data));
        }

        #[test]
        fn decode_matches_scalar(word in proptest::num::u64::ANY) {
            prop_assert_eq!(Secded::decode(word), scalar::decode(word));
            prop_assert_eq!(
                Secded::is_clean(word),
                matches!(scalar::decode(word), DecodeOutcome::Clean { .. })
            );
        }
    }
}
