/// Single-error-correcting, double-error-detecting Hamming code (39,32).
///
/// The code word layout follows the classic extended Hamming
/// construction: bit positions `1..=38` hold parity bits at the powers of
/// two (1, 2, 4, 8, 16, 32) and data bits elsewhere; bit position 0 holds
/// the overall parity covering every other bit. Seven check bits protect
/// 32 data bits, matching the paper's "(39,32) code … 7 additional ECC
/// bits for each 32-bit word" (§V-A).
///
/// The type is a namespace: both operations are stateless associated
/// functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Secded;

/// Outcome of decoding a 39-bit SECDED code word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// Code word was clean; data extracted.
    Clean {
        /// The stored 32-bit word.
        data: u32,
    },
    /// A single-bit error was detected and corrected.
    Corrected {
        /// The corrected 32-bit word.
        data: u32,
        /// Code-word bit position (0..39) that was repaired.
        bit: u8,
    },
    /// A double-bit error was detected; `data` is the best-effort
    /// (uncorrected) extraction. The paper's baseline raises no
    /// interrupt in this case, so the corrupted data flows onward —
    /// exactly how the evaluation treats multi-bit words.
    DoubleError {
        /// Best-effort extraction of the (still corrupt) data bits.
        data: u32,
    },
}

impl DecodeOutcome {
    /// The carried data word regardless of outcome.
    pub fn data(&self) -> u32 {
        match *self {
            DecodeOutcome::Clean { data }
            | DecodeOutcome::Corrected { data, .. }
            | DecodeOutcome::DoubleError { data } => data,
        }
    }

    /// True unless a double error was detected.
    pub fn is_reliable(&self) -> bool {
        !matches!(self, DecodeOutcome::DoubleError { .. })
    }
}

/// Code-word positions 1..=38 that hold data bits (non powers of two).
fn data_positions() -> impl Iterator<Item = u32> {
    (1u32..39).filter(|p| !p.is_power_of_two())
}

impl Secded {
    /// Number of bits in a code word.
    pub const CODE_BITS: u32 = 39;
    /// Number of data bits per code word.
    pub const DATA_BITS: u32 = 32;
    /// Check bits per code word (Hamming + overall parity).
    pub const CHECK_BITS: u32 = 7;

    /// Encodes a 32-bit word into a 39-bit code word (stored in the low
    /// bits of a `u64`).
    pub fn encode(data: u32) -> u64 {
        let mut word: u64 = 0;
        // Scatter data bits into non-power-of-two positions 1..=38.
        for (i, pos) in data_positions().enumerate() {
            if (data >> i) & 1 == 1 {
                word |= 1 << pos;
            }
        }
        // Hamming parity bits at powers of two: parity over every
        // position whose index has that bit set.
        for p in [1u32, 2, 4, 8, 16, 32] {
            let mut parity = 0u64;
            for pos in 1..39u32 {
                if pos & p != 0 {
                    parity ^= (word >> pos) & 1;
                }
            }
            word |= parity << p;
        }
        // Overall parity at position 0 covers positions 1..=38.
        let mut overall = 0u64;
        for pos in 1..39u32 {
            overall ^= (word >> pos) & 1;
        }
        word |= overall;
        word
    }

    /// Decodes a 39-bit code word, correcting a single-bit error and
    /// detecting (without correcting) double-bit errors.
    ///
    /// Errors of three or more bits are beyond the code's guarantees and
    /// may alias to any outcome — the same silent-corruption hazard the
    /// paper exploits to motivate plaintext-space correction.
    pub fn decode(mut word: u64) -> DecodeOutcome {
        word &= (1u64 << 39) - 1;
        // Syndrome: XOR of parity checks.
        let mut syndrome = 0u32;
        for p in [1u32, 2, 4, 8, 16, 32] {
            let mut parity = 0u64;
            for pos in 1..39u32 {
                if pos & p != 0 {
                    parity ^= (word >> pos) & 1;
                }
            }
            if parity != 0 {
                syndrome |= p;
            }
        }
        let mut overall = 0u64;
        for pos in 0..39u32 {
            overall ^= (word >> pos) & 1;
        }
        match (syndrome, overall) {
            (0, 0) => DecodeOutcome::Clean {
                data: Self::extract(word),
            },
            (0, _) => {
                // Overall parity bit itself flipped.
                DecodeOutcome::Corrected {
                    data: Self::extract(word),
                    bit: 0,
                }
            }
            (s, 1) if s < 39 => {
                word ^= 1 << s;
                DecodeOutcome::Corrected {
                    data: Self::extract(word),
                    bit: s as u8,
                }
            }
            // Syndrome nonzero with even overall parity => double error;
            // syndrome pointing past the code word => uncorrectable.
            _ => DecodeOutcome::DoubleError {
                data: Self::extract(word),
            },
        }
    }

    fn extract(word: u64) -> u32 {
        let mut data = 0u32;
        for (i, pos) in data_positions().enumerate() {
            if (word >> pos) & 1 == 1 {
                data |= 1 << i;
            }
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn code_geometry() {
        assert_eq!(Secded::CODE_BITS, 39);
        assert_eq!(Secded::DATA_BITS + Secded::CHECK_BITS, Secded::CODE_BITS);
        assert_eq!(data_positions().count(), 32);
    }

    #[test]
    fn clean_roundtrip() {
        for data in [0u32, 1, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x8000_0001] {
            let word = Secded::encode(data);
            assert_eq!(Secded::decode(word), DecodeOutcome::Clean { data });
        }
    }

    #[test]
    fn corrects_every_single_bit_flip() {
        let data = 0xA5A5_5A5A;
        let word = Secded::encode(data);
        for bit in 0..39 {
            let outcome = Secded::decode(word ^ (1 << bit));
            match outcome {
                DecodeOutcome::Corrected { data: d, bit: b } => {
                    assert_eq!(d, data, "bit {bit}");
                    assert_eq!(b as u32, bit);
                }
                other => panic!("bit {bit}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn detects_every_double_bit_flip() {
        let data = 0x1234_5678;
        let word = Secded::encode(data);
        for a in 0..39u32 {
            for b in (a + 1)..39 {
                let outcome = Secded::decode(word ^ (1 << a) ^ (1 << b));
                assert!(
                    matches!(outcome, DecodeOutcome::DoubleError { .. }),
                    "bits {a},{b}: got {outcome:?}"
                );
            }
        }
    }

    #[test]
    fn outcome_accessors() {
        let clean = DecodeOutcome::Clean { data: 7 };
        assert_eq!(clean.data(), 7);
        assert!(clean.is_reliable());
        let double = DecodeOutcome::DoubleError { data: 9 };
        assert_eq!(double.data(), 9);
        assert!(!double.is_reliable());
    }

    #[test]
    fn whole_word_corruption_is_not_correctable_to_original() {
        // The PSEC scenario: all 32 data bits flipped (a whole-weight
        // error). SECDED must NOT return the original data — that is the
        // paper's core argument for MILR.
        let data = 0x0F0F_1234;
        let word = Secded::encode(data);
        let mut corrupted = word;
        for pos in data_positions() {
            corrupted ^= 1u64 << pos;
        }
        let outcome = Secded::decode(corrupted);
        assert_ne!(outcome.data(), data);
    }

    proptest! {
        #[test]
        fn roundtrip_any_word(data in proptest::num::u32::ANY) {
            prop_assert_eq!(
                Secded::decode(Secded::encode(data)),
                DecodeOutcome::Clean { data }
            );
        }

        #[test]
        fn single_flip_always_corrected(data in proptest::num::u32::ANY, bit in 0u32..39) {
            let word = Secded::encode(data) ^ (1u64 << bit);
            let outcome = Secded::decode(word);
            prop_assert_eq!(outcome.data(), data);
            prop_assert!(outcome.is_reliable());
        }

        #[test]
        fn double_flip_always_detected(
            data in proptest::num::u32::ANY,
            a in 0u32..39,
            b in 0u32..39,
        ) {
            prop_assume!(a != b);
            let word = Secded::encode(data) ^ (1u64 << a) ^ (1u64 << b);
            prop_assert!(!Secded::decode(word).is_reliable());
        }
    }
}
