//! Declarative SLOs with multi-window burn-rate alerting.
//!
//! An [`SloSpec`] names an objective over a good/bad event stream —
//! availability (time-weighted up/down nanoseconds), p99 latency
//! (request under/over a threshold), heal exactness (bit-exact vs
//! approximate heal outcomes), durability (certified re-anchor
//! commits vs durability errors). The [`SloEngine`] accumulates each
//! stream into cumulative totals *and* into two bucketed sliding
//! windows (fast and slow), and fires an alert when **both** windows'
//! burn rates exceed the spec's threshold — the standard multi-window
//! guard: the slow window keeps one transient spike from paging, the
//! fast window keeps the alert from staying red long after the burn
//! stopped.
//!
//! **Burn rate** is budget consumption speed: with objective `o` the
//! error budget is `1 − o`, and a window whose bad fraction is `b`
//! burns at `b / (1 − o)` — burn 1.0 spends the budget exactly at the
//! rate it was provisioned, burn 10 spends a month of budget in three
//! days.
//!
//! Everything here is integer-count in, fixed-arithmetic out: fed
//! from a deterministic simulation the engine's verdicts, burn rates,
//! and alert stamps are byte-reproducible, which is what lets the
//! [`SloReport`] embed into the golden-parity-checked campaign
//! reports.

/// What a spec measures. Determines which driver stream feeds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloKind {
    /// Time-weighted availability: good = uptime ns, bad = downtime ns.
    Availability,
    /// Latency objective: good = requests at or under the spec's
    /// threshold, bad = requests over it.
    LatencyP99,
    /// Heal exactness: good = bit-exact heals, bad = approximate ones.
    HealExactness,
    /// Durability: good = committed re-anchors/flushes, bad =
    /// durability errors.
    Durability,
}

impl SloKind {
    /// Stable lowercase name (JSON, logs).
    pub fn name(&self) -> &'static str {
        match self {
            SloKind::Availability => "availability",
            SloKind::LatencyP99 => "latency_p99",
            SloKind::HealExactness => "heal_exactness",
            SloKind::Durability => "durability",
        }
    }
}

/// One declarative objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Display name (`"availability"`, `"latency_p99"`, ...).
    pub name: &'static str,
    /// The measured stream.
    pub kind: SloKind,
    /// Target good fraction in `(0, 1)`; error budget is `1 − objective`.
    pub objective: f64,
    /// Latency threshold (ns) a request must beat to count good.
    /// Only consulted by [`SloKind::LatencyP99`] drivers.
    pub latency_threshold_ns: u64,
    /// Fast alert window (ns).
    pub fast_window_ns: u64,
    /// Slow alert window (ns).
    pub slow_window_ns: u64,
    /// Burn rate both windows must exceed to fire.
    pub burn_threshold: f64,
}

/// Default fast window: 50 ms of driver time (sim campaigns run
/// tens-to-hundreds of milliseconds of virtual time; the live server
/// sees the same scale in wall time).
pub const DEFAULT_FAST_WINDOW_NS: u64 = 50_000_000;
/// Default slow window: 10× the fast one.
pub const DEFAULT_SLOW_WINDOW_NS: u64 = 500_000_000;
/// Default burn-rate threshold: budget spent at twice the provisioned
/// rate in both windows.
pub const DEFAULT_BURN_THRESHOLD: f64 = 2.0;

impl SloSpec {
    fn with_defaults(name: &'static str, kind: SloKind, objective: f64) -> Self {
        SloSpec {
            name,
            kind,
            objective,
            latency_threshold_ns: 0,
            fast_window_ns: DEFAULT_FAST_WINDOW_NS,
            slow_window_ns: DEFAULT_SLOW_WINDOW_NS,
            burn_threshold: DEFAULT_BURN_THRESHOLD,
        }
    }

    /// A time-weighted availability objective.
    pub fn availability(objective: f64) -> Self {
        Self::with_defaults("availability", SloKind::Availability, objective)
    }

    /// A latency objective: `objective` of requests at or under
    /// `threshold_ns`.
    pub fn latency_p99(threshold_ns: u64, objective: f64) -> Self {
        SloSpec {
            latency_threshold_ns: threshold_ns,
            ..Self::with_defaults("latency_p99", SloKind::LatencyP99, objective)
        }
    }

    /// A heal-exactness objective.
    pub fn heal_exactness(objective: f64) -> Self {
        Self::with_defaults("heal_exactness", SloKind::HealExactness, objective)
    }

    /// A durability (certified re-anchor success) objective.
    pub fn durability(objective: f64) -> Self {
        Self::with_defaults("durability", SloKind::Durability, objective)
    }
}

/// Bucketed sliding-window good/bad accumulator.
#[derive(Debug, Clone)]
struct WindowRing {
    bucket_ns: u64,
    /// `(good, bad)` per bucket.
    buckets: Vec<(u64, u64)>,
    /// Absolute index of the newest bucket written.
    current: u64,
}

const WINDOW_BUCKETS: usize = 8;

impl WindowRing {
    fn new(window_ns: u64) -> Self {
        WindowRing {
            bucket_ns: (window_ns / WINDOW_BUCKETS as u64).max(1),
            buckets: vec![(0, 0); WINDOW_BUCKETS],
            current: 0,
        }
    }

    /// Zeroes buckets the clock skipped past, then returns the live
    /// bucket for `ns`.
    fn advance(&mut self, ns: u64) -> &mut (u64, u64) {
        let idx = ns / self.bucket_ns;
        if idx > self.current {
            let skipped = (idx - self.current).min(WINDOW_BUCKETS as u64);
            for k in 1..=skipped {
                let slot = ((self.current + k) % WINDOW_BUCKETS as u64) as usize;
                self.buckets[slot] = (0, 0);
            }
            self.current = idx;
        }
        &mut self.buckets[(self.current % WINDOW_BUCKETS as u64) as usize]
    }

    fn observe(&mut self, ns: u64, good: u64, bad: u64) {
        let bucket = self.advance(ns);
        bucket.0 += good;
        bucket.1 += bad;
    }

    /// `(good, bad)` over the retained window as of `ns`.
    fn totals(&mut self, ns: u64) -> (u64, u64) {
        self.advance(ns);
        self.buckets
            .iter()
            .fold((0, 0), |(g, b), &(bg, bb)| (g + bg, b + bb))
    }
}

fn burn_rate(good: u64, bad: u64, objective: f64) -> f64 {
    let total = good + bad;
    if total == 0 {
        return 0.0;
    }
    let bad_fraction = bad as f64 / total as f64;
    let budget = (1.0 - objective).max(f64::EPSILON);
    bad_fraction / budget
}

/// One alert transition returned by [`SloEngine::observe`]: the spec
/// index, its name, and the fast-window burn in milli-units (so the
/// driver can emit it as a fixed-payload
/// [`EventKind::AlertFired`](crate::EventKind::AlertFired)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloAlert {
    /// Driver clock when the alert fired.
    pub ns: u64,
    /// Index into the engine's spec list.
    pub spec: u32,
    /// The spec's display name.
    pub name: &'static str,
    /// Fast-window burn rate × 1000, saturating.
    pub burn_milli: u32,
}

#[derive(Debug, Clone)]
struct SpecState {
    fast: WindowRing,
    slow: WindowRing,
    total_good: u64,
    total_bad: u64,
    firing: bool,
    alerts: u64,
}

/// Evaluates a set of [`SloSpec`]s over good/bad event streams.
#[derive(Debug)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
    states: Vec<SpecState>,
}

impl SloEngine {
    /// An engine over the given specs.
    pub fn new(specs: Vec<SloSpec>) -> Self {
        let states = specs
            .iter()
            .map(|s| SpecState {
                fast: WindowRing::new(s.fast_window_ns),
                slow: WindowRing::new(s.slow_window_ns),
                total_good: 0,
                total_bad: 0,
                firing: false,
                alerts: 0,
            })
            .collect();
        SloEngine { specs, states }
    }

    /// The default single-server serving suite. The availability
    /// objective is campaign-scaled: the simulated fault campaigns
    /// deliberately hammer a ~100 ms run with multi-millisecond
    /// quarantines, so "three nines" would just mean "always red".
    pub fn serving_defaults() -> Self {
        SloEngine::new(vec![
            SloSpec::availability(0.70),
            SloSpec::latency_p99(50_000_000, 0.95),
            SloSpec::heal_exactness(0.50),
            SloSpec::durability(0.999),
        ])
    }

    /// The default fleet suite, judged on the client-facing fleet view
    /// (the fleet is only *down* when every replica is), so the
    /// availability bar is much higher than a single replica's.
    pub fn fleet_defaults() -> Self {
        SloEngine::new(vec![
            SloSpec::availability(0.995),
            SloSpec::latency_p99(50_000_000, 0.95),
            SloSpec::heal_exactness(0.25),
            SloSpec::durability(0.999),
        ])
    }

    /// The configured specs.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Feeds `good`/`bad` weight into every spec of `kind` at `ns` and
    /// returns the alerts that **newly** fired (rising edges only; a
    /// spec keeps burning without re-alerting until both windows cool
    /// below threshold).
    pub fn observe(&mut self, ns: u64, kind: SloKind, good: u64, bad: u64) -> Vec<SloAlert> {
        let mut fired = Vec::new();
        for (idx, (spec, state)) in self.specs.iter().zip(self.states.iter_mut()).enumerate() {
            if spec.kind != kind {
                continue;
            }
            state.total_good += good;
            state.total_bad += bad;
            state.fast.observe(ns, good, bad);
            state.slow.observe(ns, good, bad);
            let (fg, fb) = state.fast.totals(ns);
            let (sg, sb) = state.slow.totals(ns);
            let fast_burn = burn_rate(fg, fb, spec.objective);
            let slow_burn = burn_rate(sg, sb, spec.objective);
            let hot = fast_burn >= spec.burn_threshold && slow_burn >= spec.burn_threshold;
            if hot && !state.firing {
                state.firing = true;
                state.alerts += 1;
                fired.push(SloAlert {
                    ns,
                    spec: idx as u32,
                    name: spec.name,
                    burn_milli: (fast_burn * 1000.0).min(u32::MAX as f64) as u32,
                });
            } else if !hot && state.firing {
                state.firing = false;
            }
        }
        fired
    }

    /// Convenience for request-shaped streams: one latency sample,
    /// judged against each latency spec's own threshold.
    pub fn observe_latency(&mut self, ns: u64, latency_ns: u64) -> Vec<SloAlert> {
        let mut fired = Vec::new();
        for (idx, (spec, state)) in self.specs.iter().zip(self.states.iter_mut()).enumerate() {
            if spec.kind != SloKind::LatencyP99 {
                continue;
            }
            let (good, bad) = if latency_ns <= spec.latency_threshold_ns {
                (1, 0)
            } else {
                (0, 1)
            };
            state.total_good += good;
            state.total_bad += bad;
            state.fast.observe(ns, good, bad);
            state.slow.observe(ns, good, bad);
            let (fg, fb) = state.fast.totals(ns);
            let (sg, sb) = state.slow.totals(ns);
            let fast_burn = burn_rate(fg, fb, spec.objective);
            let slow_burn = burn_rate(sg, sb, spec.objective);
            let hot = fast_burn >= spec.burn_threshold && slow_burn >= spec.burn_threshold;
            if hot && !state.firing {
                state.firing = true;
                state.alerts += 1;
                fired.push(SloAlert {
                    ns,
                    spec: idx as u32,
                    name: spec.name,
                    burn_milli: (fast_burn * 1000.0).min(u32::MAX as f64) as u32,
                });
            } else if !hot && state.firing {
                state.firing = false;
            }
        }
        fired
    }

    /// Current burn rates `(fast, slow)` per spec as of `ns`.
    pub fn burn_rates(&mut self, ns: u64) -> Vec<(f64, f64)> {
        self.specs
            .iter()
            .zip(self.states.iter_mut())
            .map(|(spec, state)| {
                let (fg, fb) = state.fast.totals(ns);
                let (sg, sb) = state.slow.totals(ns);
                (
                    burn_rate(fg, fb, spec.objective),
                    burn_rate(sg, sb, spec.objective),
                )
            })
            .collect()
    }

    /// Folds the cumulative totals into the end-of-run report.
    pub fn report(&mut self, end_ns: u64) -> SloReport {
        let burns = self.burn_rates(end_ns);
        let budgets: Vec<SloBudget> = self
            .specs
            .iter()
            .zip(self.states.iter())
            .zip(burns)
            .map(|((spec, state), (fast_burn, slow_burn))| {
                let total = state.total_good + state.total_bad;
                let compliance = if total == 0 {
                    1.0
                } else {
                    state.total_good as f64 / total as f64
                };
                SloBudget {
                    name: spec.name,
                    kind: spec.kind,
                    objective: spec.objective,
                    good: state.total_good,
                    bad: state.total_bad,
                    compliance,
                    budget_spent: burn_rate(state.total_good, state.total_bad, spec.objective),
                    fast_burn,
                    slow_burn,
                    alerts: state.alerts,
                    pass: compliance >= spec.objective,
                }
            })
            .collect();
        SloReport {
            pass: budgets.iter().all(|b| b.pass),
            alerts: budgets.iter().map(|b| b.alerts).sum(),
            budgets,
        }
    }
}

/// One spec's end-of-run verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SloBudget {
    /// The spec's display name.
    pub name: &'static str,
    /// The measured stream.
    pub kind: SloKind,
    /// The target good fraction.
    pub objective: f64,
    /// Cumulative good weight.
    pub good: u64,
    /// Cumulative bad weight.
    pub bad: u64,
    /// Achieved good fraction (1.0 when nothing was observed).
    pub compliance: f64,
    /// Whole-run burn: error-budget fraction consumed per unit
    /// provisioned (1.0 = spent exactly the budget).
    pub budget_spent: f64,
    /// Fast-window burn rate at end of run.
    pub fast_burn: f64,
    /// Slow-window burn rate at end of run.
    pub slow_burn: f64,
    /// Alert rising edges during the run.
    pub alerts: u64,
    /// True when compliance met the objective.
    pub pass: bool,
}

impl SloBudget {
    /// Renders the budget as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"objective\":{:.6},\"good\":{},",
                "\"bad\":{},\"compliance\":{:.9},\"budget_spent\":{:.6},",
                "\"fast_burn\":{:.6},\"slow_burn\":{:.6},\"alerts\":{},\"pass\":{}}}"
            ),
            self.name,
            self.kind.name(),
            self.objective,
            self.good,
            self.bad,
            self.compliance,
            self.budget_spent,
            self.fast_burn,
            self.slow_burn,
            self.alerts,
            self.pass,
        )
    }
}

/// The end-of-run SLO verdict embedded in campaign reports.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// True when every budget passed.
    pub pass: bool,
    /// Total alert rising edges across all specs.
    pub alerts: u64,
    /// Per-spec verdicts, in spec order.
    pub budgets: Vec<SloBudget>,
}

impl SloReport {
    /// The named budget, if configured.
    pub fn budget(&self, name: &str) -> Option<&SloBudget> {
        self.budgets.iter().find(|b| b.name == name)
    }

    /// Renders the report as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"pass\":{},\"alerts\":{},\"budgets\":[",
            self.pass, self.alerts
        );
        for (i, b) in self.budgets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&b.to_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_rate_is_bad_fraction_over_budget() {
        // 2% bad against a 1% budget burns at 2×.
        assert!((burn_rate(98, 2, 0.99) - 2.0).abs() < 1e-12);
        assert_eq!(burn_rate(0, 0, 0.99), 0.0);
        // All-bad saturates at 1/budget.
        assert!((burn_rate(0, 10, 0.9) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn alert_needs_both_windows_hot_and_fires_once_per_episode() {
        let mut engine = SloEngine::new(vec![SloSpec {
            fast_window_ns: 8_000,
            slow_window_ns: 80_000,
            burn_threshold: 2.0,
            ..SloSpec::availability(0.9)
        }]);
        // A short bad burst: the fast window runs hot immediately, and
        // because the slow window has seen nothing else yet, it is hot
        // too — the alert fires exactly once while the burn persists.
        let mut alerts = engine.observe(1_000, SloKind::Availability, 0, 500);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].name, "availability");
        assert!(alerts[0].burn_milli >= 2_000);
        alerts = engine.observe(2_000, SloKind::Availability, 0, 500);
        assert!(alerts.is_empty(), "no re-fire while still burning");

        // A long good stretch cools both windows (the fast one decays
        // first); the next burst is a fresh rising edge.
        for t in 0..40u64 {
            assert!(engine
                .observe(10_000 + t * 4_000, SloKind::Availability, 1_000, 0)
                .is_empty());
        }
        let again = engine.observe(200_000, SloKind::Availability, 0, 900_000);
        assert_eq!(again.len(), 1, "cooled alert re-arms");
        assert_eq!(engine.report(200_000).alerts, 2);
    }

    #[test]
    fn slow_window_guards_against_transient_spikes() {
        let mut engine = SloEngine::new(vec![SloSpec {
            fast_window_ns: 1_000,
            slow_window_ns: 1_000_000,
            burn_threshold: 2.0,
            ..SloSpec::availability(0.9)
        }]);
        // A long healthy history fills the slow window with good time.
        for t in 0..100u64 {
            engine.observe(t * 10_000, SloKind::Availability, 10_000, 0);
        }
        // One small spike: fast window is hot, slow window is not.
        let alerts = engine.observe(1_000_500, SloKind::Availability, 0, 400);
        assert!(alerts.is_empty(), "one spike must not page");
    }

    #[test]
    fn latency_samples_are_judged_against_the_spec_threshold() {
        let mut engine = SloEngine::new(vec![SloSpec::latency_p99(1_000_000, 0.5)]);
        engine.observe_latency(10, 900_000);
        engine.observe_latency(20, 1_100_000);
        engine.observe_latency(30, 500_000);
        let report = engine.report(40);
        let b = report.budget("latency_p99").unwrap();
        assert_eq!((b.good, b.bad), (2, 1));
        assert!(b.pass);
    }

    #[test]
    fn report_json_is_deterministic_and_verdicts_fold() {
        let mut engine =
            SloEngine::new(vec![SloSpec::availability(0.9), SloSpec::durability(0.999)]);
        engine.observe(100, SloKind::Availability, 95, 5);
        engine.observe(100, SloKind::Durability, 3, 0);
        let report = engine.report(200);
        assert!(report.pass);
        let json = report.to_json();
        assert!(json.starts_with("{\"pass\":true,\"alerts\":0,\"budgets\":["));
        assert!(json.contains(
            "\"name\":\"availability\",\"kind\":\"availability\",\"objective\":0.900000"
        ));
        assert!(json.contains("\"good\":95,\"bad\":5,\"compliance\":0.950000000"));
        assert!(json.ends_with("]}"));
        assert_eq!(json, engine.report(200).to_json(), "report is idempotent");

        // Blowing the availability budget flips both verdicts.
        engine.observe(300, SloKind::Availability, 0, 50);
        let blown = engine.report(300);
        assert!(!blown.pass);
        assert!(!blown.budget("availability").unwrap().pass);
        assert!(blown.budget("durability").unwrap().pass);
    }

    #[test]
    fn empty_engine_passes_trivially() {
        let mut engine = SloEngine::serving_defaults();
        let report = engine.report(0);
        assert!(report.pass, "no data, no violation");
        assert_eq!(report.budgets.len(), 4);
        assert!(report.budgets.iter().all(|b| b.compliance == 1.0));
    }
}
