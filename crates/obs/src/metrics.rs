//! The metrics registry: named atomic counters, gauges, and
//! [`AtomicHistogram`]s, snapshot-exportable as JSON and Prometheus
//! text exposition format.
//!
//! Registration (`counter`/`gauge`/`histogram`) takes a short mutex to
//! get-or-create the named instrument and hands back an `Arc` handle;
//! all *recording* through the handle is lock-free atomics, so hot
//! paths register once up front and never touch the registry lock
//! again.

use crate::hist::{AtomicHistogram, Histogram};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed atomic gauge (queue depths, in-flight counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via `dec`).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct Instruments {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<AtomicHistogram>>,
}

/// A named-instrument registry. Cheap to share (`Arc<MetricsRegistry>`);
/// instruments live for the registry's lifetime.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Instruments>,
    /// Wall cost of the most recent [`MetricsRegistry::snapshot`].
    last_snapshot_ns: AtomicU64,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the histogram named `name`. All buckets are
    /// preallocated here, so recording through the handle never
    /// allocates.
    pub fn histogram(&self, name: &str) -> Arc<AtomicHistogram> {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// A point-in-time copy of every instrument, sorted by name. The
    /// wall cost of building the copy is tracked for
    /// [`MetricsRegistry::export_self_stats`] — snapshotting is the
    /// registry's only non-constant operation, so its cost *is* the
    /// registry's overhead story.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let started = std::time::Instant::now();
        let inner = self.inner.lock().unwrap();
        let snap = MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        };
        drop(inner);
        self.last_snapshot_ns
            .store(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        snap
    }

    /// Number of registered series across all instrument kinds.
    pub fn series_count(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.counters.len() + inner.gauges.len() + inner.histograms.len()
    }

    /// Wall cost (ns) of the most recent snapshot, 0 before the first.
    pub fn last_snapshot_cost_ns(&self) -> u64 {
        self.last_snapshot_ns.load(Ordering::Relaxed)
    }

    /// Surfaces the observability plane's own health as first-class
    /// metrics, so observability loss is itself observable:
    /// `obs_series` (registered series), `obs_snapshot_cost_ns` (wall
    /// cost of the last snapshot), and — when the caller passes its
    /// trace recorder's drop count — `obs_trace_dropped_total`
    /// (monotone; the counter is advanced by the delta since the last
    /// export). Call right before exporting a snapshot.
    pub fn export_self_stats(&self, trace_dropped: Option<u64>) {
        if let Some(dropped) = trace_dropped {
            let c = self.counter("obs_trace_dropped_total");
            c.add(dropped.saturating_sub(c.get()));
        }
        let series = self.gauge("obs_series");
        let cost = self.gauge("obs_snapshot_cost_ns");
        series.set(self.series_count() as i64);
        cost.set(self.last_snapshot_cost_ns() as i64);
    }
}

/// An immutable snapshot of a [`MetricsRegistry`], ready to export.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, histogram)` pairs, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// The value of the named counter, if it was registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The value of the named gauge, if it was registered.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The named histogram, if it was registered.
    pub fn histogram_named(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot as a single JSON object. Histograms export
    /// their count, exact sum/max/mean, and the standard quantiles.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{name}\":{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.3},\
                 \"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count(),
                h.sum(),
                h.max(),
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
            ));
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot in Prometheus text exposition format.
    /// Histogram buckets are cumulative over the non-empty buckets,
    /// closed by the conventional `+Inf` bucket, `_sum`, and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (upper, n) in h.nonzero_buckets() {
                cumulative += n;
                out.push_str(&format!("{name}_bucket{{le=\"{upper}\"}} {cumulative}\n"));
            }
            out.push_str(&format!(
                "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
                h.count(),
                h.sum(),
                h.count()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_lock_free_after_registration() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("requests_total");
        let c2 = reg.counter("requests_total");
        c1.inc();
        c2.add(2);
        assert_eq!(reg.counter("requests_total").get(), 3);

        let g = reg.gauge("queue_depth");
        g.set(5);
        g.dec();
        assert_eq!(g.get(), 4);

        let h = reg.histogram("latency_ns");
        h.record(1000);
        h.record(2000);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn snapshot_exports_json_and_prometheus() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total").add(7);
        reg.counter("a_total").add(3);
        reg.gauge("depth").set(-2);
        let h = reg.histogram("lat");
        h.record(10);
        h.record(100);

        let snap = reg.snapshot();
        // BTreeMap ordering: names are sorted.
        assert_eq!(snap.counters[0].0, "a_total");
        let json = snap.to_json();
        assert!(json.starts_with("{\"counters\":{\"a_total\":3,\"b_total\":7}"));
        assert!(json.contains("\"depth\":-2"));
        assert!(json.contains("\"lat\":{\"count\":2,\"sum\":110,\"max\":100"));

        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE a_total counter\na_total 3\n"));
        assert!(prom.contains("# TYPE depth gauge\ndepth -2\n"));
        assert!(prom.contains("# TYPE lat histogram\n"));
        assert!(prom.contains("lat_bucket{le=\"10\"} 1\n"));
        assert!(prom.contains("lat_bucket{le=\"+Inf\"} 2\nlat_sum 110\nlat_count 2\n"));
    }

    #[test]
    fn self_stats_surface_series_count_snapshot_cost_and_trace_drops() {
        let reg = MetricsRegistry::new();
        reg.counter("requests_total").inc();
        reg.gauge("depth").set(1);
        assert_eq!(reg.series_count(), 2);
        assert_eq!(reg.last_snapshot_cost_ns(), 0, "no snapshot yet");

        let _ = reg.snapshot();
        reg.export_self_stats(Some(7));
        let snap = reg.snapshot();
        assert_eq!(snap.counter_value("obs_trace_dropped_total"), Some(7));
        // 2 user series + obs_trace_dropped_total + obs_series +
        // obs_snapshot_cost_ns.
        assert_eq!(snap.gauge_value("obs_series"), Some(5));
        assert!(snap.gauge_value("obs_snapshot_cost_ns").is_some());

        // The drop counter is monotone and delta-advanced: exporting a
        // larger cumulative count adds only the difference, exporting
        // the same count is a no-op.
        reg.export_self_stats(Some(9));
        reg.export_self_stats(Some(9));
        assert_eq!(
            reg.snapshot().counter_value("obs_trace_dropped_total"),
            Some(9)
        );
    }
}
