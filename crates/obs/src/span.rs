//! Hierarchical timed spans: flame-graph-shaped latency attribution.
//!
//! A span tree records *where time went* inside one unit of work —
//! a scrub tick (pipeline stage → layer → segment), a served batch
//! (batch → decode → forward), a journal commit (write → fsync →
//! apply). Like the trace layer, spans are stamped with the
//! **driver's** clock: the deterministic simulators stamp virtual
//! nanoseconds (fixed seed ⇒ byte-identical span JSONL), the live
//! server stamps wall time since start. The span layer never reads a
//! clock of its own.
//!
//! Each node carries *self time* — its duration minus the sum of its
//! children's durations — so the overhead of the instrumented code
//! itself (and of the instrumentation) is first-class: flame-style
//! JSON export and the ASCII renderer both show it, and a tree whose
//! root self time dwarfs its children is telling you the span
//! taxonomy is missing a child, not that the work was free.

use std::fmt;
use std::sync::{Arc, Mutex};

/// One completed span: a named, tagged interval with nested children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Static span name (`"tick"`, `"heal"`, `"batch"`, `"fsync"`, ...).
    pub name: &'static str,
    /// Free-form numeric tag: layer index, batch occupancy, page
    /// count — whatever disambiguates siblings of the same name.
    pub tag: u64,
    /// Driver clock at open, nanoseconds.
    pub start_ns: u64,
    /// Driver clock at close, nanoseconds.
    pub end_ns: u64,
    /// Completed child spans, in open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Wall (or virtual) duration of the span.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Self time: duration minus the children's total duration —
    /// the time this span spent *not* inside a child (including the
    /// instrumentation's own overhead at this level).
    pub fn self_ns(&self) -> u64 {
        let child_ns: u64 = self.children.iter().map(|c| c.duration_ns()).sum();
        self.duration_ns().saturating_sub(child_ns)
    }

    /// Total number of nodes in the tree rooted here.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanNode::node_count)
            .sum::<usize>()
    }

    /// Renders the tree as one deterministic flame-style JSON object
    /// (fixed field order; `self_ns` is materialized so consumers do
    /// not re-derive it).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"tag\":{},\"start_ns\":{},\"end_ns\":{},\"self_ns\":{},\"children\":[",
            self.name,
            self.tag,
            self.start_ns,
            self.end_ns,
            self.self_ns()
        ));
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.write_json(out);
        }
        out.push_str("]}");
    }
}

/// A span-tree builder over the driver's clock: `open` pushes a span,
/// `close` pops it onto its parent (or the finished-roots list), and
/// [`SpanTree::finish`] closes anything still open — a run that ends
/// mid-incident still yields a well-formed tree, with the unclosed
/// spans clamped to the finish stamp.
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    stack: Vec<SpanNode>,
    roots: Vec<SpanNode>,
}

impl SpanTree {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a child of the innermost open span (or a new root).
    pub fn open(&mut self, ns: u64, name: &'static str, tag: u64) {
        self.stack.push(SpanNode {
            name,
            tag,
            start_ns: ns,
            end_ns: ns,
            children: Vec::new(),
        });
    }

    /// Closes the innermost open span at `ns`.
    ///
    /// # Panics
    ///
    /// Panics when no span is open (an unbalanced close is a driver
    /// bug, not a recoverable condition).
    pub fn close(&mut self, ns: u64) {
        let mut node = self.stack.pop().expect("close without open");
        node.end_ns = node.end_ns.max(ns);
        match self.stack.last_mut() {
            Some(parent) => parent.children.push(node),
            None => self.roots.push(node),
        }
    }

    /// Number of currently open (unclosed) spans.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// True when nothing was ever opened (and nothing completed).
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty() && self.roots.is_empty()
    }

    /// Closes every still-open span at `ns` and drains the completed
    /// roots, oldest first. The builder is reusable afterwards.
    pub fn finish(&mut self, ns: u64) -> Vec<SpanNode> {
        while !self.stack.is_empty() {
            self.close(ns);
        }
        std::mem::take(&mut self.roots)
    }
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn render_into(node: &SpanNode, depth: usize, out: &mut String) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(&format!(
        "{} #{} [{:.1}us..{:.1}us] {:.1}us (self {:.1}us)\n",
        node.name,
        node.tag,
        us(node.start_ns),
        us(node.end_ns),
        us(node.duration_ns()),
        us(node.self_ns()),
    ));
    for child in &node.children {
        render_into(child, depth + 1, out);
    }
}

/// Renders a span tree as an indented ASCII flame view, one line per
/// span: `name #tag [start..end] duration (self …)`.
pub fn render_flame(root: &SpanNode) -> String {
    let mut out = String::new();
    render_into(root, 0, &mut out);
    out
}

#[derive(Debug, Default)]
struct SpanRingState {
    trees: Vec<SpanNode>,
    head: usize,
    dropped: u64,
}

/// A bounded ring of completed span trees: keeps the most recent
/// `capacity` roots, counting (never silently losing) overwrites —
/// the `/spans` endpoint serves its tail.
#[derive(Debug)]
pub struct SpanRing {
    capacity: usize,
    state: Mutex<SpanRingState>,
}

impl SpanRing {
    /// A ring holding at most `capacity` trees (min 1).
    pub fn new(capacity: usize) -> Self {
        SpanRing {
            capacity: capacity.max(1),
            state: Mutex::new(SpanRingState::default()),
        }
    }

    /// Pushes one completed tree, overwriting the oldest when full.
    pub fn push(&self, tree: SpanNode) {
        let mut state = self.state.lock().unwrap();
        if state.trees.len() < self.capacity {
            state.trees.push(tree);
        } else {
            let head = state.head;
            state.trees[head] = tree;
            state.head = (head + 1) % self.capacity;
            state.dropped += 1;
        }
    }

    /// Trees overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.state.lock().unwrap().dropped
    }

    /// Number of retained trees.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().trees.len()
    }

    /// True when no tree has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retained trees, oldest first.
    pub fn trees(&self) -> Vec<SpanNode> {
        let state = self.state.lock().unwrap();
        if state.trees.len() < self.capacity {
            state.trees.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&state.trees[state.head..]);
            out.extend_from_slice(&state.trees[..state.head]);
            out
        }
    }

    /// Renders the retained trees as JSONL, one flame-style tree per
    /// line, each line newline-terminated.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for tree in self.trees() {
            out.push_str(&tree.to_json());
            out.push('\n');
        }
        out
    }
}

/// A cloneable handle over a shared [`SpanRing`]. Like
/// [`TraceHandle`](crate::TraceHandle), it carries no clock — drivers
/// stamp spans themselves.
#[derive(Clone)]
pub struct SpanHandle(Arc<SpanRing>);

impl fmt::Debug for SpanHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SpanHandle(..)")
    }
}

impl SpanHandle {
    /// Wraps a shared ring.
    pub fn new(ring: Arc<SpanRing>) -> Self {
        SpanHandle(ring)
    }

    /// Pushes one completed tree into the ring.
    #[inline]
    pub fn push(&self, tree: SpanNode) {
        self.0.push(tree);
    }

    /// Pushes every root produced by [`SpanTree::finish`].
    pub fn push_all(&self, trees: Vec<SpanNode>) {
        for tree in trees {
            self.0.push(tree);
        }
    }

    /// The underlying ring.
    pub fn ring(&self) -> &Arc<SpanRing> {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_self_time_account_correctly() {
        let mut tree = SpanTree::new();
        tree.open(0, "tick", 3);
        tree.open(10, "scrub", 0);
        tree.close(40);
        tree.open(40, "heal", 1);
        tree.open(45, "layer", 1);
        tree.close(70);
        tree.close(80);
        tree.close(100);
        let roots = tree.finish(100);
        assert_eq!(roots.len(), 1);
        let root = &roots[0];
        assert_eq!(root.name, "tick");
        assert_eq!(root.duration_ns(), 100);
        // 100 total − (30 scrub + 40 heal) = 30 self.
        assert_eq!(root.self_ns(), 30);
        let heal = &root.children[1];
        assert_eq!(heal.self_ns(), 40 - 25);
        assert_eq!(root.node_count(), 4);
    }

    #[test]
    fn finish_closes_unclosed_children_at_the_end_stamp() {
        // A sim that ends mid-incident leaves spans open; finish must
        // clamp them all to the final clock and still build one tree.
        let mut tree = SpanTree::new();
        tree.open(5, "tick", 0);
        tree.open(7, "heal", 2);
        tree.open(9, "layer", 2);
        let roots = tree.finish(20);
        assert_eq!(roots.len(), 1);
        let root = &roots[0];
        assert_eq!(root.end_ns, 20);
        assert_eq!(root.children[0].end_ns, 20);
        assert_eq!(root.children[0].children[0].end_ns, 20);
        assert_eq!(root.children[0].children[0].duration_ns(), 11);
        assert_eq!(tree.depth(), 0, "builder is reusable after finish");
    }

    #[test]
    fn json_is_deterministic_and_carries_self_ns() {
        let mut tree = SpanTree::new();
        tree.open(0, "batch", 4);
        tree.open(1, "decode", 0);
        tree.close(3);
        tree.open(3, "forward", 0);
        tree.close(9);
        tree.close(10);
        let root = tree.finish(10).pop().unwrap();
        assert_eq!(
            root.to_json(),
            "{\"name\":\"batch\",\"tag\":4,\"start_ns\":0,\"end_ns\":10,\"self_ns\":2,\
             \"children\":[{\"name\":\"decode\",\"tag\":0,\"start_ns\":1,\"end_ns\":3,\
             \"self_ns\":2,\"children\":[]},{\"name\":\"forward\",\"tag\":0,\"start_ns\":3,\
             \"end_ns\":9,\"self_ns\":6,\"children\":[]}]}"
        );
        let flame = render_flame(&root);
        assert!(flame.starts_with("batch #4 "));
        assert!(flame.contains("\n  decode #0 "));
        assert!(flame.contains("(self 0.0us)"));
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let ring = SpanRing::new(2);
        for i in 0..5u64 {
            let mut tree = SpanTree::new();
            tree.open(i, "t", i);
            ring.push(tree.finish(i + 1).pop().unwrap());
        }
        assert_eq!(ring.dropped(), 3);
        let trees = ring.trees();
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].tag, 3, "oldest kept is #3");
        assert_eq!(ring.to_jsonl().lines().count(), 2);
    }

    #[test]
    fn empty_tree_finishes_to_nothing() {
        let mut tree = SpanTree::new();
        assert!(tree.is_empty());
        assert!(tree.finish(100).is_empty());
    }
}
