//! Log-bucketed mergeable histograms.
//!
//! The bucket layout is HdrHistogram-style: values below [`SUB`] get one
//! exact bucket each; every octave above that is split into [`SUB`]
//! sub-buckets, so the relative quantization error is bounded by
//! `1/SUB ≈ 3.1%` (comfortably inside the 5% budget). Two histograms
//! recorded on different replicas merge by bucket-wise addition, which
//! is exactly what count-weighted percentile averaging cannot do:
//! quantiles of the merged distribution are recovered from the merged
//! cumulative counts, not averaged from per-replica summaries.
//!
//! The sum and max are tracked exactly alongside the buckets, so the
//! merged mean and max carry no quantization error at all.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the number of sub-buckets per octave.
pub const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (and the number of exact unit buckets).
pub const SUB: usize = 1 << SUB_BITS;
/// Total bucket count: `SUB` exact buckets plus `SUB` sub-buckets for
/// each of the `64 - SUB_BITS - 1` octaves a `u64` value can occupy.
pub const NUM_BUCKETS: usize = SUB + (64 - SUB_BITS as usize - 1) * SUB;

/// Maps a value to its bucket index. Total order preserving: monotone
/// in `v`, exact below `SUB`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let octave = (msb - SUB_BITS) as usize;
        let sub = ((v >> (msb - SUB_BITS)) as usize) & (SUB - 1);
        SUB + octave * SUB + sub
    }
}

/// Largest value stored in bucket `idx` — the canonical representative
/// reported by quantile queries.
#[inline]
pub fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let octave = (idx - SUB) / SUB;
        let sub = ((idx - SUB) % SUB) as u64;
        let lower = (SUB as u64 + sub) << octave;
        lower + ((1u64 << octave) - 1)
    }
}

/// A plain (single-threaded) mergeable histogram with exact sum and max.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile over the merged buckets. Returns the upper
    /// bound of the bucket holding the ranked sample (exact below
    /// [`SUB`]), capped at the exactly-tracked max. `q` is clamped to
    /// `[0, 1]`; returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.value_at_quantile(q)
    }

    /// Inverse of the bucket math: the value at arbitrary quantile `q`
    /// — walk the cumulative bucket counts to the nearest-rank bucket
    /// and return its upper bound (exact below [`SUB`], within the
    /// `1/SUB ≈ 3.1%` bucket quantization above it), capped at the
    /// exactly-tracked max. This is the query surface the SLO engine
    /// and tests use for quantiles beyond the pre-baked p50/p95/p99.
    /// `q` is clamped to `[0, 1]`; returns 0 when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Adds every bucket (and the exact sum/max) of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Iterates non-empty buckets as `(upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n != 0)
            .map(|(idx, &n)| (bucket_upper(idx), n))
    }
}

/// A lock-free histogram: recording is a handful of `Relaxed` atomic
/// RMWs on preallocated buckets — no lock, no allocation — so it is
/// safe to call from the fused clean-path forward.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        let mut buckets = Vec::with_capacity(NUM_BUCKETS);
        buckets.resize_with(NUM_BUCKETS, AtomicU64::default);
        AtomicHistogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// An empty atomic histogram with all buckets preallocated.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value using only `Relaxed` atomics.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state into a plain [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (dst, src) in h.buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        h.count = self.count.load(Ordering::Relaxed);
        h.sum = self.sum.load(Ordering::Relaxed) as u128;
        h.max = self.max.load(Ordering::Relaxed);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_upper_bound_holds() {
        let mut prev = 0usize;
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index must be monotone at {v}");
            assert!(bucket_upper(idx) >= v, "upper bound must cover {v}");
            assert!(idx < NUM_BUCKETS);
            prev = idx;
            v = v * 3 + 7;
        }
    }

    #[test]
    fn relative_error_is_within_five_percent() {
        let mut v = 1u64;
        for _ in 0..200_000 {
            let upper = bucket_upper(bucket_index(v));
            let err = (upper - v) as f64 / v as f64;
            assert!(err <= 0.05, "relative error {err} at {v}");
            v = v.wrapping_mul(31).wrapping_add(17) % (u64::MAX / 2) + 1;
        }
    }

    #[test]
    fn quantiles_track_exact_percentiles() {
        let mut h = Histogram::new();
        let samples: Vec<u64> = (1..=10_000).map(|i| i * 97).collect();
        for &s in &samples {
            h.record(s);
        }
        for q in [0.5, 0.95, 0.99] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let approx = h.quantile(q);
            let err = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(err <= 0.05, "q={q}: approx {approx} vs exact {exact}");
        }
        assert_eq!(h.max(), 970_000);
        assert_eq!(h.quantile(1.0), 970_000, "p100 is the exact max");
    }

    #[test]
    fn value_at_quantile_tracks_exact_nearest_rank_on_random_samples() {
        // Deterministic LCG "random" samples spanning several octaves.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut samples: Vec<u64> = (0..5_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 16) % 10_000_000 + 1
            })
            .collect();
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        // Arbitrary quantiles, not just the pre-baked three.
        for q in [
            0.01, 0.10, 0.25, 0.333, 0.5, 0.6, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0,
        ] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let approx = h.value_at_quantile(q);
            assert!(approx >= exact, "q={q}: {approx} below exact {exact}");
            let err = (approx - exact) as f64 / exact as f64;
            assert!(
                err <= 1.0 / SUB as f64 + 1e-9,
                "q={q}: err {err} (approx {approx}, exact {exact})"
            );
        }
        assert_eq!(h.value_at_quantile(0.0), h.quantile(0.0));
    }

    #[test]
    fn merge_of_disjoint_bucket_ranges_preserves_both_tails() {
        // One histogram lives entirely in the exact low buckets, the
        // other entirely several octaves up — no bucket overlaps.
        let mut low = Histogram::new();
        for v in 1..=20u64 {
            low.record(v);
        }
        let mut high = Histogram::new();
        for v in 0..20u64 {
            high.record(1_000_000 + v * 10_000);
        }
        let mut merged = low.clone();
        merged.merge(&high);
        assert_eq!(merged.count(), 40);
        assert_eq!(merged.sum(), low.sum() + high.sum());
        assert_eq!(merged.max(), high.max());
        // The low tail is exact, the high tail is bucket-quantized.
        assert_eq!(merged.value_at_quantile(0.25), 10);
        let p90 = merged.value_at_quantile(0.9);
        assert!(
            p90 >= 1_000_000,
            "p90 {p90} must come from the high histogram"
        );
        // Every non-empty bucket of the merge belongs to exactly one
        // input (the ranges are disjoint).
        let lows = low.nonzero_buckets().count();
        let highs = high.nonzero_buckets().count();
        assert_eq!(merged.nonzero_buckets().count(), lows + highs);
    }

    #[test]
    fn zero_count_merge_is_identity() {
        let mut h = Histogram::new();
        for v in [3u64, 77, 12_345] {
            h.record(v);
        }
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before, "merging an empty histogram changes nothing");

        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before, "merging into empty copies the input");
    }

    #[test]
    fn merge_matches_recording_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for i in 0..500u64 {
            let v = i * i + 3;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn atomic_snapshot_equals_plain() {
        let ah = AtomicHistogram::new();
        let mut h = Histogram::new();
        for v in [0, 1, 31, 32, 33, 1000, 123_456_789] {
            ah.record(v);
            h.record(v);
        }
        assert_eq!(ah.snapshot(), h);
    }
}
