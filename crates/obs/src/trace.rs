//! The structured trace layer: typed events, sinks, and a bounded
//! ring-buffer recorder.
//!
//! Events are stamped with the **driver's** clock, not the recorder's:
//! the deterministic simulators pass their virtual clock (so a fixed
//! seed reproduces the trace byte-for-byte), while the threaded server
//! passes wall time since start. The recorder never reads a clock of
//! its own.

use std::fmt;
use std::sync::{Arc, Mutex};

/// What happened. Fixed-size payloads only — emitting an event never
/// allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A fault was injected into `layer`. `weight` is the flattened
    /// weight index, or `u64::MAX` for a whole-layer corruption.
    FaultInjected {
        /// Target layer index.
        layer: u32,
        /// Flattened weight index (`u64::MAX` = whole layer).
        weight: u64,
    },
    /// A scrub pass flagged `layer` as corrupted.
    ScrubFlagged {
        /// Flagged layer index.
        layer: u32,
    },
    /// The integrity pipeline entered a stage.
    StageEntered {
        /// Static stage name (`"Scrub"`, `"Detect"`, `"Heal"`, ...).
        stage: &'static str,
    },
    /// A heal attempt on `layer` finished.
    HealOutcome {
        /// Healed layer index.
        layer: u32,
        /// True when the reconstruction was bit-exact.
        exact: bool,
    },
    /// Quarantine state changed.
    Quarantine {
        /// True on entering quarantine, false on leaving it.
        entered: bool,
    },
    /// A peer-repair transfer completed from `donor`.
    PeerRepair {
        /// Donor replica index.
        donor: u32,
    },
    /// A batch was dispatched to a worker.
    BatchDispatched {
        /// Number of requests in the batch.
        occupancy: u32,
    },
    /// The store was re-anchored after re-protection.
    Reanchor {
        /// True when the anchor reached durable storage.
        durable: bool,
    },
    /// An SLO burn-rate alert fired (rising edge): both the fast and
    /// slow windows of spec `slo` exceeded the burn threshold.
    AlertFired {
        /// Index of the spec in the run's SLO engine.
        slo: u32,
        /// Fast-window burn rate × 1000 at the firing instant.
        burn_milli: u32,
    },
}

impl EventKind {
    /// The event's type name as it appears in the JSONL `event` field.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::FaultInjected { .. } => "FaultInjected",
            EventKind::ScrubFlagged { .. } => "ScrubFlagged",
            EventKind::StageEntered { .. } => "StageEntered",
            EventKind::HealOutcome { .. } => "HealOutcome",
            EventKind::Quarantine { .. } => "Quarantine",
            EventKind::PeerRepair { .. } => "PeerRepair",
            EventKind::BatchDispatched { .. } => "BatchDispatched",
            EventKind::Reanchor { .. } => "Reanchor",
            EventKind::AlertFired { .. } => "AlertFired",
        }
    }
}

/// One trace event: driver clock stamp, source id, payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Driver clock at emission, in nanoseconds (virtual in sims, wall
    /// since start in the live server).
    pub ns: u64,
    /// Source id: replica index in the fleet, 0 in single-server runs,
    /// [`FLEET_SRC`] for fleet-level (router) events.
    pub src: u32,
    /// The payload.
    pub kind: EventKind,
}

/// `src` value for fleet-level events not tied to one replica.
pub const FLEET_SRC: u32 = u32::MAX;

impl TraceEvent {
    /// Renders the event as one deterministic JSON line (no trailing
    /// newline). Field order is fixed, so identical event streams
    /// render to byte-identical JSONL.
    pub fn to_json(&self) -> String {
        let TraceEvent { ns, src, kind } = self;
        let head = format!("{{\"ns\":{ns},\"src\":{src},\"event\":\"{}\"", kind.name());
        let tail = match kind {
            EventKind::FaultInjected { layer, weight } => {
                format!(",\"layer\":{layer},\"weight\":{weight}}}")
            }
            EventKind::ScrubFlagged { layer } => format!(",\"layer\":{layer}}}"),
            EventKind::StageEntered { stage } => format!(",\"stage\":\"{stage}\"}}"),
            EventKind::HealOutcome { layer, exact } => {
                format!(",\"layer\":{layer},\"exact\":{exact}}}")
            }
            EventKind::Quarantine { entered } => format!(",\"entered\":{entered}}}"),
            EventKind::PeerRepair { donor } => format!(",\"donor\":{donor}}}"),
            EventKind::BatchDispatched { occupancy } => {
                format!(",\"occupancy\":{occupancy}}}")
            }
            EventKind::Reanchor { durable } => format!(",\"durable\":{durable}}}"),
            EventKind::AlertFired { slo, burn_milli } => {
                format!(",\"slo\":{slo},\"burn_milli\":{burn_milli}}}")
            }
        };
        head + &tail
    }
}

/// Where events go. Implementations must tolerate concurrent `record`
/// calls.
pub trait TraceSink: Send + Sync {
    /// Accepts one event.
    fn record(&self, event: TraceEvent);
}

/// Discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: TraceEvent) {}
}

#[derive(Debug, Default)]
struct RingState {
    events: Vec<TraceEvent>,
    /// Events discarded because the ring was full (oldest first).
    dropped: u64,
    head: usize,
}

/// A bounded ring-buffer recorder: keeps the most recent `capacity`
/// events, counting (not silently losing) overwrites.
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    state: Mutex<RingState>,
}

impl RingRecorder {
    /// A recorder holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            capacity: capacity.max(1),
            state: Mutex::new(RingState::default()),
        }
    }

    /// Number of events overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.state.lock().unwrap().dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let state = self.state.lock().unwrap();
        if state.events.len() < self.capacity {
            state.events.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&state.events[state.head..]);
            out.extend_from_slice(&state.events[..state.head]);
            out
        }
    }

    /// Renders the retained events as JSONL, one event per line, each
    /// line newline-terminated.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

impl TraceSink for RingRecorder {
    fn record(&self, event: TraceEvent) {
        let mut state = self.state.lock().unwrap();
        if state.events.len() < self.capacity {
            state.events.push(event);
        } else {
            let head = state.head;
            state.events[head] = event;
            state.head = (head + 1) % self.capacity;
            state.dropped += 1;
        }
    }
}

/// A cloneable handle over a shared [`TraceSink`]. The handle carries
/// no clock — callers stamp events with their own `ns`.
#[derive(Clone)]
pub struct TraceHandle(Arc<dyn TraceSink>);

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TraceHandle(..)")
    }
}

impl TraceHandle {
    /// Wraps a shared sink.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        TraceHandle(sink)
    }

    /// Emits one event stamped with the caller's clock.
    #[inline]
    pub fn emit(&self, ns: u64, src: u32, kind: EventKind) {
        self.0.record(TraceEvent { ns, src, kind });
    }
}

/// The observability context threaded through drivers: an optional
/// trace sink, an optional metrics registry, and an optional span
/// ring. `Observer::default()` observes nothing and is the cost-free
/// common case.
#[derive(Debug, Clone, Default)]
pub struct Observer {
    /// Structured event sink, if any.
    pub trace: Option<TraceHandle>,
    /// Metrics registry, if any.
    pub metrics: Option<Arc<crate::metrics::MetricsRegistry>>,
    /// Completed-span-tree ring, if any.
    pub spans: Option<crate::span::SpanHandle>,
}

impl Observer {
    /// An observer that records events into the given sink.
    pub fn with_trace(sink: Arc<dyn TraceSink>) -> Self {
        Observer {
            trace: Some(TraceHandle::new(sink)),
            metrics: None,
            spans: None,
        }
    }

    /// Adds a metrics registry.
    pub fn and_metrics(mut self, metrics: Arc<crate::metrics::MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Adds a span ring.
    pub fn and_spans(mut self, ring: Arc<crate::span::SpanRing>) -> Self {
        self.spans = Some(crate::span::SpanHandle::new(ring));
        self
    }

    /// Emits `kind` if a trace sink is attached.
    #[inline]
    pub fn emit(&self, ns: u64, src: u32, kind: EventKind) {
        if let Some(trace) = &self.trace {
            trace.emit(ns, src, kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_field_order_is_fixed() {
        let ev = TraceEvent {
            ns: 12,
            src: 3,
            kind: EventKind::HealOutcome {
                layer: 1,
                exact: true,
            },
        };
        assert_eq!(
            ev.to_json(),
            "{\"ns\":12,\"src\":3,\"event\":\"HealOutcome\",\"layer\":1,\"exact\":true}"
        );
        let fault = TraceEvent {
            ns: 0,
            src: 0,
            kind: EventKind::FaultInjected {
                layer: 2,
                weight: u64::MAX,
            },
        };
        assert!(fault
            .to_json()
            .ends_with("\"layer\":2,\"weight\":18446744073709551615}"));
        let alert = TraceEvent {
            ns: 99,
            src: 1,
            kind: EventKind::AlertFired {
                slo: 0,
                burn_milli: 2500,
            },
        };
        assert_eq!(
            alert.to_json(),
            "{\"ns\":99,\"src\":1,\"event\":\"AlertFired\",\"slo\":0,\"burn_milli\":2500}"
        );
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let ring = RingRecorder::new(3);
        for i in 0..5u64 {
            ring.record(TraceEvent {
                ns: i,
                src: 0,
                kind: EventKind::Quarantine { entered: true },
            });
        }
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.ns).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest events are overwritten first"
        );
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.to_jsonl().lines().count(), 3);
    }

    #[test]
    fn observer_default_is_inert() {
        let obs = Observer::default();
        obs.emit(1, 0, EventKind::Reanchor { durable: true });
        assert!(obs.trace.is_none() && obs.metrics.is_none() && obs.spans.is_none());
    }
}
