//! `milr-obs`: deterministic tracing, mergeable metrics, and
//! integrity-episode forensics for the MILR stack.
//!
//! Three pieces, zero external dependencies:
//!
//! - [`metrics`]: a registry of named atomic counters, gauges, and
//!   log-bucketed mergeable histograms ([`hist`]), snapshot-exportable
//!   as JSON and Prometheus text exposition format. Recording through
//!   a registered handle is lock-free atomics on preallocated storage
//!   — safe on the fused clean-path forward.
//! - [`trace`]: typed events ([`TraceEvent`]) through a [`TraceSink`]
//!   into a bounded [`RingRecorder`], stamped with the *driver's*
//!   clock: virtual time in the deterministic simulators (fixed seed ⇒
//!   byte-identical JSONL), wall time in the threaded server.
//! - [`forensics`]: folds the event stream into per-incident
//!   [`Episode`] timelines — fault→detect→heal→certify latencies,
//!   exact-vs-approximate heal mix, escalation paths.
//! - [`span`]: hierarchical timed spans ([`SpanTree`]) with
//!   self-overhead accounting, flame-style JSON export, an ASCII
//!   renderer, and a bounded [`SpanRing`] of completed trees.
//! - [`slo`]: declarative [`SloSpec`]s evaluated by an [`SloEngine`]
//!   with fast/slow multi-window burn-rate alerting, folded into an
//!   [`SloReport`] budget verdict.

#![deny(missing_docs)]

pub mod forensics;
pub mod hist;
pub mod metrics;
pub mod slo;
pub mod span;
pub mod trace;

pub use forensics::{fold_episodes, render_timeline, Episode};
pub use hist::{AtomicHistogram, Histogram};
pub use metrics::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};
pub use slo::{SloAlert, SloBudget, SloEngine, SloKind, SloReport, SloSpec};
pub use span::{render_flame, SpanHandle, SpanNode, SpanRing, SpanTree};
pub use trace::{
    EventKind, NullSink, Observer, RingRecorder, TraceEvent, TraceHandle, TraceSink, FLEET_SRC,
};
