//! Episode forensics: folds a flat trace-event stream into
//! per-incident timelines.
//!
//! An *episode* is one integrity incident on one source: it opens at
//! the first `FaultInjected` (or at a `ScrubFlagged` that arrives with
//! no pending fault — latent corruption), accumulates the detection,
//! heal, quarantine, and escalation events that follow, and closes at
//! the `Reanchor` that certifies the store again. The fold recovers
//! the paper's quantities of interest per incident instead of per run:
//! fault→detect latency, detect→heal latency, exact-vs-approximate
//! heal mix, and the escalation path taken.

use crate::trace::{EventKind, TraceEvent};
use std::collections::BTreeMap;

/// One folded integrity incident.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Episode {
    /// Source the episode happened on (replica index, or 0).
    pub src: u32,
    /// Driver clock of the first fault, if the fault was observed.
    pub fault_ns: Option<u64>,
    /// Layers faulted during the episode.
    pub fault_layers: Vec<u32>,
    /// Driver clock when a scrub first flagged the corruption.
    pub flagged_ns: Option<u64>,
    /// Layers flagged by scrubs during the episode.
    pub flagged_layers: Vec<u32>,
    /// Driver clock of the first heal outcome.
    pub heal_ns: Option<u64>,
    /// Bit-exact heals during the episode.
    pub exact_heals: usize,
    /// Approximate (escalation-worthy) heals during the episode.
    pub approx_heals: usize,
    /// Donors used for peer repair, in order.
    pub donors: Vec<u32>,
    /// True if the source entered quarantine during the episode.
    pub quarantined: bool,
    /// Driver clock of the closing re-anchor.
    pub reanchor_ns: Option<u64>,
    /// Whether the closing re-anchor reached durable storage.
    pub durable: Option<bool>,
    /// Pipeline stages entered, in order, with their clock stamps.
    pub stages: Vec<(&'static str, u64)>,
    /// Batches dispatched on this source while the incident was open:
    /// `(clock, occupancy)` — the traffic that was in flight during
    /// the episode.
    pub batches: Vec<(u64, u32)>,
    /// SLO burn-rate alerts that fired while the incident was open:
    /// `(clock, spec index)` — when the budget tripped relative to the
    /// fault/heal timeline.
    pub alerts: Vec<(u64, u32)>,
}

impl Episode {
    /// Fault→detect latency, when both ends were observed.
    pub fn detect_latency_ns(&self) -> Option<u64> {
        Some(self.flagged_ns?.saturating_sub(self.fault_ns?))
    }

    /// Detect→heal latency, when both ends were observed.
    pub fn heal_latency_ns(&self) -> Option<u64> {
        Some(self.heal_ns?.saturating_sub(self.flagged_ns?))
    }

    /// Fault→certify (re-anchor) latency, when both ends were observed.
    pub fn certify_latency_ns(&self) -> Option<u64> {
        Some(self.reanchor_ns?.saturating_sub(self.fault_ns?))
    }

    /// The escalation path taken, e.g. `"heal"`, `"heal→peer-repair"`,
    /// `"heal→quarantine→peer-repair"`.
    pub fn escalation_path(&self) -> String {
        let mut path = vec!["heal"];
        if self.quarantined {
            path.push("quarantine");
        }
        if !self.donors.is_empty() {
            path.push("peer-repair");
        }
        path.join("→")
    }
}

/// Folds a trace-event stream (any interleaving of sources) into the
/// episodes it contains, in order of episode opening. Events that do
/// not belong to an incident (`BatchDispatched`, stage entries of
/// clean scrub cycles) are ignored.
pub fn fold_episodes(events: &[TraceEvent]) -> Vec<Episode> {
    let mut open: BTreeMap<u32, (usize, Episode)> = BTreeMap::new();
    let mut done: Vec<(usize, Episode)> = Vec::new();
    for (order, ev) in events.iter().enumerate() {
        match ev.kind {
            EventKind::FaultInjected { layer, .. } => {
                let (_, ep) = open.entry(ev.src).or_insert_with(|| {
                    let ep = Episode {
                        src: ev.src,
                        ..Episode::default()
                    };
                    (order, ep)
                });
                if ep.fault_ns.is_none() {
                    ep.fault_ns = Some(ev.ns);
                }
                ep.fault_layers.push(layer);
            }
            EventKind::ScrubFlagged { layer } => {
                let (_, ep) = open.entry(ev.src).or_insert_with(|| {
                    let ep = Episode {
                        src: ev.src,
                        ..Episode::default()
                    };
                    (order, ep)
                });
                if ep.flagged_ns.is_none() {
                    ep.flagged_ns = Some(ev.ns);
                }
                ep.flagged_layers.push(layer);
            }
            EventKind::StageEntered { stage } => {
                if let Some((_, ep)) = open.get_mut(&ev.src) {
                    ep.stages.push((stage, ev.ns));
                }
            }
            EventKind::HealOutcome { exact, .. } => {
                if let Some((_, ep)) = open.get_mut(&ev.src) {
                    if ep.heal_ns.is_none() {
                        ep.heal_ns = Some(ev.ns);
                    }
                    if exact {
                        ep.exact_heals += 1;
                    } else {
                        ep.approx_heals += 1;
                    }
                }
            }
            EventKind::Quarantine { entered } => {
                if let Some((_, ep)) = open.get_mut(&ev.src) {
                    if entered {
                        ep.quarantined = true;
                    }
                }
            }
            EventKind::PeerRepair { donor } => {
                if let Some((_, ep)) = open.get_mut(&ev.src) {
                    ep.donors.push(donor);
                }
            }
            EventKind::Reanchor { durable } => {
                if let Some((opened, mut ep)) = open.remove(&ev.src) {
                    ep.reanchor_ns = Some(ev.ns);
                    ep.durable = Some(durable);
                    done.push((opened, ep));
                }
            }
            EventKind::BatchDispatched { occupancy } => {
                if let Some((_, ep)) = open.get_mut(&ev.src) {
                    ep.batches.push((ev.ns, occupancy));
                }
            }
            EventKind::AlertFired { slo, .. } => {
                if let Some((_, ep)) = open.get_mut(&ev.src) {
                    ep.alerts.push((ev.ns, slo));
                }
            }
        }
    }
    // Unclosed episodes (run ended mid-incident) still count.
    done.extend(open.into_values());
    done.sort_by_key(|(opened, _)| *opened);
    done.into_iter().map(|(_, ep)| ep).collect()
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Renders episodes as a human-readable forensics timeline, one line
/// per incident plus a stage sub-line when stage stamps were traced.
pub fn render_timeline(episodes: &[Episode]) -> String {
    let mut out = String::new();
    for (i, ep) in episodes.iter().enumerate() {
        out.push_str(&format!("episode {} (src {}):", i + 1, ep.src));
        match ep.fault_ns {
            Some(ns) => out.push_str(&format!(
                " fault@{:.3}ms layers {:?}",
                ms(ns),
                ep.fault_layers
            )),
            None => out.push_str(" latent fault"),
        }
        if let Some(ns) = ep.flagged_ns {
            out.push_str(&format!(" -> flagged@{:.3}ms", ms(ns)));
            if let Some(d) = ep.detect_latency_ns() {
                out.push_str(&format!(" (+{:.3}ms)", ms(d)));
            }
        }
        if let Some(ns) = ep.heal_ns {
            let kind = if ep.approx_heals == 0 {
                "exact"
            } else {
                "approx"
            };
            out.push_str(&format!(" -> healed@{:.3}ms", ms(ns)));
            if let Some(d) = ep.heal_latency_ns() {
                out.push_str(&format!(" (+{:.3}ms, {kind})", ms(d)));
            } else {
                out.push_str(&format!(" ({kind})"));
            }
        }
        if let Some(ns) = ep.reanchor_ns {
            let durable = if ep.durable == Some(true) {
                "durable"
            } else {
                "volatile"
            };
            out.push_str(&format!(" -> reanchored@{:.3}ms {durable}", ms(ns)));
            if let Some(d) = ep.certify_latency_ns() {
                out.push_str(&format!(" (total {:.3}ms)", ms(d)));
            }
        } else {
            out.push_str(" -> [open at end of trace]");
        }
        out.push_str(&format!(" via {}\n", ep.escalation_path()));
        if !ep.stages.is_empty() {
            out.push_str("  stages:");
            for (stage, ns) in &ep.stages {
                out.push_str(&format!(" {stage}@{:.3}ms", ms(*ns)));
            }
            out.push('\n');
        }
        if !ep.batches.is_empty() {
            out.push_str("  in-flight batches:");
            for (ns, occupancy) in &ep.batches {
                out.push_str(&format!(" {occupancy}req@{:.3}ms", ms(*ns)));
            }
            out.push('\n');
        }
        if !ep.alerts.is_empty() {
            out.push_str("  budget alerts:");
            for (ns, slo) in &ep.alerts {
                out.push_str(&format!(" slo#{slo}@{:.3}ms", ms(*ns)));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ns: u64, src: u32, kind: EventKind) -> TraceEvent {
        TraceEvent { ns, src, kind }
    }

    #[test]
    fn folds_a_full_incident() {
        let events = vec![
            ev(1_000_000, 0, EventKind::BatchDispatched { occupancy: 4 }),
            ev(
                2_000_000,
                0,
                EventKind::FaultInjected {
                    layer: 1,
                    weight: 7,
                },
            ),
            ev(6_000_000, 0, EventKind::ScrubFlagged { layer: 1 }),
            ev(6_000_000, 0, EventKind::Quarantine { entered: true }),
            ev(6_000_000, 0, EventKind::StageEntered { stage: "Heal" }),
            ev(
                16_000_000,
                0,
                EventKind::HealOutcome {
                    layer: 1,
                    exact: true,
                },
            ),
            ev(16_500_000, 0, EventKind::Reanchor { durable: false }),
        ];
        let eps = fold_episodes(&events);
        assert_eq!(eps.len(), 1);
        let ep = &eps[0];
        assert_eq!(ep.detect_latency_ns(), Some(4_000_000));
        assert_eq!(ep.heal_latency_ns(), Some(10_000_000));
        assert_eq!(ep.certify_latency_ns(), Some(14_500_000));
        assert_eq!(ep.exact_heals, 1);
        assert!(ep.quarantined);
        assert_eq!(ep.escalation_path(), "heal→quarantine");
        assert_eq!(ep.stages, vec![("Heal", 6_000_000)]);

        let timeline = render_timeline(&eps);
        assert!(timeline.contains("fault@2.000ms"));
        assert!(timeline.contains("flagged@6.000ms (+4.000ms)"));
        assert!(timeline.contains("healed@16.000ms (+10.000ms, exact)"));
        assert!(timeline.contains("via heal→quarantine"));
    }

    #[test]
    fn interleaved_sources_fold_independently() {
        let events = vec![
            ev(
                1,
                0,
                EventKind::FaultInjected {
                    layer: 0,
                    weight: 1,
                },
            ),
            ev(
                2,
                1,
                EventKind::FaultInjected {
                    layer: 2,
                    weight: 9,
                },
            ),
            ev(3, 1, EventKind::ScrubFlagged { layer: 2 }),
            ev(4, 1, EventKind::PeerRepair { donor: 0 }),
            ev(5, 1, EventKind::Reanchor { durable: true }),
            ev(6, 0, EventKind::ScrubFlagged { layer: 0 }),
        ];
        let eps = fold_episodes(&events);
        assert_eq!(eps.len(), 2);
        assert_eq!(eps[0].src, 0, "episodes ordered by opening");
        assert_eq!(eps[0].reanchor_ns, None, "src 0 episode left open");
        assert_eq!(eps[1].donors, vec![0]);
        assert_eq!(eps[1].escalation_path(), "heal→peer-repair");
        assert!(render_timeline(&eps).contains("[open at end of trace]"));
    }

    #[test]
    fn clean_stage_entries_outside_incidents_are_ignored() {
        let events = vec![
            ev(1, 0, EventKind::StageEntered { stage: "Scrub" }),
            ev(2, 0, EventKind::StageEntered { stage: "Detect" }),
        ];
        assert!(fold_episodes(&events).is_empty());
    }

    #[test]
    fn in_flight_batches_and_alerts_join_the_incident_timeline() {
        let events = vec![
            // Before the incident: ignored, like clean stage entries.
            ev(1_000_000, 0, EventKind::BatchDispatched { occupancy: 8 }),
            ev(
                2_000_000,
                0,
                EventKind::FaultInjected {
                    layer: 0,
                    weight: 3,
                },
            ),
            // In flight while the fault is live.
            ev(3_000_000, 0, EventKind::BatchDispatched { occupancy: 4 }),
            ev(4_000_000, 0, EventKind::ScrubFlagged { layer: 0 }),
            // The budget trips mid-incident.
            ev(
                5_000_000,
                0,
                EventKind::AlertFired {
                    slo: 0,
                    burn_milli: 3000,
                },
            ),
            ev(5_500_000, 0, EventKind::BatchDispatched { occupancy: 2 }),
            ev(6_000_000, 0, EventKind::Reanchor { durable: false }),
            // After the incident closed: ignored again.
            ev(
                7_000_000,
                0,
                EventKind::AlertFired {
                    slo: 1,
                    burn_milli: 100,
                },
            ),
        ];
        let eps = fold_episodes(&events);
        assert_eq!(eps.len(), 1);
        let ep = &eps[0];
        assert_eq!(ep.batches, vec![(3_000_000, 4), (5_500_000, 2)]);
        assert_eq!(ep.alerts, vec![(5_000_000, 0)]);

        let timeline = render_timeline(&eps);
        assert!(timeline.contains("in-flight batches: 4req@3.000ms 2req@5.500ms"));
        assert!(timeline.contains("budget alerts: slo#0@5.000ms"));
    }
}
