use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded random source for fault injection.
///
/// Thin wrapper over [`rand::rngs::StdRng`] exposing exactly the
/// primitives the injectors need. Unlike the PRNG tensors of
/// `milr-tensor` (whose stream is part of MILR's *storage format* and
/// must be stable forever), injection randomness only needs to be
/// reproducible within a build, so the standard generator is fine here.
#[derive(Debug, Clone)]
pub struct FaultRng {
    inner: StdRng,
}

impl FaultRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        FaultRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        self.inner.gen_range(0..bound)
    }

    /// Uniform `u32` over the full range (used to synthesize corrupted
    /// weight bit patterns).
    pub fn bits32(&mut self) -> u32 {
        self.inner.gen()
    }

    /// Draws the gap to the next Bernoulli success in a stream of trials
    /// with probability `p` (geometric distribution, zero-based).
    ///
    /// Used to skip-sample RBER injection over billions of bits without
    /// testing each bit individually.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p <= 1`.
    pub fn geometric_gap(&mut self, p: f64) -> usize {
        assert!(p > 0.0 && p <= 1.0, "probability {p} out of range");
        if p >= 1.0 {
            return 0;
        }
        let u = self.unit().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = FaultRng::seed(1);
        let mut b = FaultRng::seed(1);
        for _ in 0..32 {
            assert_eq!(a.bits32(), b.bits32());
        }
        let mut c = FaultRng::seed(2);
        assert_ne!(a.bits32(), c.bits32());
    }

    #[test]
    fn unit_in_range() {
        let mut rng = FaultRng::seed(3);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = FaultRng::seed(4);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn geometric_gap_mean_matches_distribution() {
        let mut rng = FaultRng::seed(5);
        let p = 0.01f64;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.geometric_gap(p) as f64).sum::<f64>() / n as f64;
        // Expected gap = (1-p)/p ≈ 99.
        let expect = (1.0 - p) / p;
        assert!(
            (mean - expect).abs() < expect * 0.1,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn geometric_gap_p_one_is_zero() {
        let mut rng = FaultRng::seed(6);
        assert_eq!(rng.geometric_gap(1.0), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn geometric_gap_rejects_zero() {
        FaultRng::seed(7).geometric_gap(0.0);
    }
}
