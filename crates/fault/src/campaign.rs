//! Declarative chaos/adversary campaign DSL.
//!
//! The paper's fault model is iid raw-space bit flips; production
//! memory fails in correlated patterns. A [`ChaosSpec`] composes the
//! correlated regimes — rowhammer-style [`BurstSpec`] row/column
//! bursts over the raw image's [`RawGeometry`] grid, [`StuckAtSpec`]
//! cells that re-assert after every scrub correction, [`TornWriteSpec`]
//! corruption fired at an integrity-pipeline stage seam mid-heal,
//! [`ByzantineSpec`] donors shipping corrupted pages during peer
//! repair, and [`SkewSpec`] scrub/arrival schedule distortion — and a
//! [`Campaign`] names one such composition together with its seed and
//! the SLO objectives it must hold ([`SloDecl`]).
//!
//! Everything here is plain data with a deterministic `to_json`
//! (the repo's serde stub has no serializer), so a campaign matrix run
//! under one seed serializes byte-identically forever — the property
//! the `campaign_matrix` CI gate locks.

use crate::{FaultRng, InjectionReport};
use milr_substrate::{RawGeometry, WeightSubstrate};
use std::collections::BTreeSet;

/// Converts milli-units (1000 = 1.0) to a fraction.
pub fn milli(m: u32) -> f64 {
    f64::from(m) / 1000.0
}

/// Correlated burst shapes over the raw image's row/column grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurstPattern {
    /// All bits of one victim row flip with the spec probability — a
    /// single-sided rowhammer hit.
    Row,
    /// One bit offset within every row flips with the spec probability
    /// — a failing column driver.
    Column,
    /// A double-sided rowhammer hit: the victim row takes double the
    /// spec probability, its two aggressor neighbours a quarter each.
    DoubleSidedRow,
}

impl BurstPattern {
    /// Stable name used in campaign JSON.
    pub fn name(&self) -> &'static str {
        match self {
            BurstPattern::Row => "row",
            BurstPattern::Column => "column",
            BurstPattern::DoubleSidedRow => "double_sided_row",
        }
    }
}

/// A family of correlated bursts fired over a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BurstSpec {
    /// Burst shape.
    pub pattern: BurstPattern,
    /// Number of bursts fired across the campaign horizon.
    pub bursts: usize,
    /// Per-bit flip probability inside the victim stripe, milli-units.
    pub flip_prob_milli: u32,
}

/// Plans one correlated burst over a raw space of `raw_bits` bits with
/// the given geometry: the returned positions are the bits to flip, in
/// ascending order. Deterministic per RNG state.
///
/// # Panics
///
/// Panics when `raw_bits == 0`.
pub fn plan_burst(
    geo: RawGeometry,
    raw_bits: usize,
    pattern: BurstPattern,
    flip_prob: f64,
    rng: &mut FaultRng,
) -> Vec<usize> {
    assert!(raw_bits > 0, "cannot burst an empty raw space");
    let row_bits = geo.row_bits();
    let rows = geo.rows(raw_bits);
    let p = flip_prob.clamp(0.0, 1.0);
    // (row, per-bit probability) stripes this burst hammers.
    let stripes: Vec<(usize, f64)> = match pattern {
        BurstPattern::Row => vec![(rng.below(rows), p)],
        BurstPattern::DoubleSidedRow => {
            let victim = if rows < 3 { 0 } else { 1 + rng.below(rows - 2) };
            let mut s = vec![(victim, (2.0 * p).min(1.0))];
            if victim > 0 {
                s.push((victim - 1, p / 4.0));
            }
            if victim + 1 < rows {
                s.push((victim + 1, p / 4.0));
            }
            s
        }
        BurstPattern::Column => {
            let col = rng.below(row_bits);
            let mut bits = Vec::new();
            for row in 0..rows {
                let bit = row * row_bits + col;
                if bit < raw_bits && rng.unit() < p {
                    bits.push(bit);
                }
            }
            return bits;
        }
    };
    let mut bits = Vec::new();
    for (row, prob) in stripes {
        let start = row * row_bits;
        for offset in 0..row_bits {
            let bit = start + offset;
            if bit < raw_bits && rng.unit() < prob {
                bits.push(bit);
            }
        }
    }
    bits.sort_unstable();
    bits
}

/// Plans and fires one burst on a substrate, returning the exact
/// distinct-word injection report.
pub fn inject_burst<S: WeightSubstrate + ?Sized>(
    memory: &mut S,
    pattern: BurstPattern,
    flip_prob: f64,
    rng: &mut FaultRng,
) -> InjectionReport {
    let bits = plan_burst(
        memory.raw_geometry(),
        memory.raw_bits(),
        pattern,
        flip_prob,
        rng,
    );
    crate::inject_bits(memory, &bits)
}

/// Stuck-at cells: raw bits pinned to a value that re-asserts after
/// every scrub correction, inside a bounded window of the campaign
/// horizon (so healing can eventually certify and the run drains).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StuckAtSpec {
    /// Number of stuck cells planted.
    pub bits: usize,
    /// Window start, as milli-fraction of the campaign horizon.
    pub from_milli: u32,
    /// Window end, as milli-fraction of the campaign horizon.
    pub until_milli: u32,
}

impl StuckAtSpec {
    /// True when virtual time `now` falls inside the active window of a
    /// campaign ending at `horizon`.
    pub fn active(&self, now: u64, horizon: u64) -> bool {
        let frac = now.saturating_mul(1000) / horizon.max(1);
        frac >= u64::from(self.from_milli) && frac < u64::from(self.until_milli)
    }
}

/// A planted set of stuck cells: raw bit positions and the values they
/// are stuck at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StuckAtPlan {
    /// `(raw bit, stuck value)` pairs, ascending by position.
    pub cells: Vec<(usize, bool)>,
}

/// Draws `count` distinct stuck cells over `raw_bits` positions with
/// random stuck values. Deterministic per RNG state.
pub fn plan_stuck_at(raw_bits: usize, count: usize, rng: &mut FaultRng) -> StuckAtPlan {
    let mut positions = BTreeSet::new();
    while positions.len() < count.min(raw_bits) {
        positions.insert(rng.below(raw_bits));
    }
    let cells = positions
        .into_iter()
        .map(|bit| (bit, rng.unit() < 0.5))
        .collect();
    StuckAtPlan { cells }
}

/// Re-asserts the plan's cells on a substrate: flips exactly the cells
/// whose current value differs from the stuck value (a blind re-flip
/// would *heal* a cell the scrubber already corrected). Returns the
/// number of cells re-asserted.
pub fn assert_stuck<S: WeightSubstrate + ?Sized>(memory: &mut S, plan: &StuckAtPlan) -> usize {
    let mut flipped = 0;
    for &(bit, value) in &plan.cells {
        if memory.raw_bit(bit) != value {
            memory.flip_raw_bit(bit);
            flipped += 1;
        }
    }
    flipped
}

/// A torn write racing a heal: raw corruption fired when the integrity
/// pipeline enters a named stage seam, a bounded number of times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornWriteSpec {
    /// Stage seam name (an `IntegrityPipeline` stage, e.g. `"heal"`,
    /// `"reprotect"`).
    pub stage: String,
    /// Bounded number of firings across the campaign.
    pub fires: usize,
    /// Raw bits flipped per firing.
    pub flips: usize,
}

/// Byzantine donors: replicas that ship corrupted page images when
/// asked to donate during peer repair. The certified-donor check must
/// catch (and count) every such donation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByzantineSpec {
    /// Replica indices that corrupt every page they donate.
    pub donors: Vec<usize>,
    /// Bits flipped per donated page image.
    pub flips: usize,
}

/// Schedule skew: multiplies arrival gaps and the scrub interval in
/// milli-units (1000 = neutral; 500 halves the gap, 2000 doubles it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkewSpec {
    /// Arrival-gap multiplier, milli-units.
    pub arrival_milli: u32,
    /// Scrub-interval multiplier, milli-units.
    pub scrub_milli: u32,
}

impl SkewSpec {
    /// Applies a milli-unit multiplier to a duration.
    pub fn scale(nanos: u64, factor_milli: u32) -> u64 {
        (nanos.saturating_mul(u64::from(factor_milli)) / 1000).max(1)
    }
}

/// A composition of correlated-fault regimes. `None` fields leave the
/// corresponding plane untouched; `ChaosSpec::default()` (all `None`)
/// is byte-identical to running without a campaign.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaosSpec {
    /// Correlated row/column bursts over the raw image.
    pub bursts: Option<BurstSpec>,
    /// Stuck-at cells re-asserting after scrub correction.
    pub stuck_at: Option<StuckAtSpec>,
    /// Torn writes fired at a pipeline stage seam mid-heal.
    pub torn_write: Option<TornWriteSpec>,
    /// Byzantine donors during peer repair (fleet only).
    pub byzantine: Option<ByzantineSpec>,
    /// Skewed scrub/arrival schedules.
    pub skew: Option<SkewSpec>,
}

impl ChaosSpec {
    /// True when no regime is active.
    pub fn is_quiet(&self) -> bool {
        self == &ChaosSpec::default()
    }

    /// Deterministic JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut parts = Vec::new();
        if let Some(b) = &self.bursts {
            parts.push(format!(
                "\"bursts\":{{\"pattern\":\"{}\",\"bursts\":{},\"flip_prob_milli\":{}}}",
                b.pattern.name(),
                b.bursts,
                b.flip_prob_milli
            ));
        }
        if let Some(s) = &self.stuck_at {
            parts.push(format!(
                "\"stuck_at\":{{\"bits\":{},\"from_milli\":{},\"until_milli\":{}}}",
                s.bits, s.from_milli, s.until_milli
            ));
        }
        if let Some(t) = &self.torn_write {
            parts.push(format!(
                "\"torn_write\":{{\"stage\":\"{}\",\"fires\":{},\"flips\":{}}}",
                t.stage, t.fires, t.flips
            ));
        }
        if let Some(b) = &self.byzantine {
            let donors: Vec<String> = b.donors.iter().map(|d| d.to_string()).collect();
            parts.push(format!(
                "\"byzantine\":{{\"donors\":[{}],\"flips\":{}}}",
                donors.join(","),
                b.flips
            ));
        }
        if let Some(s) = &self.skew {
            parts.push(format!(
                "\"skew\":{{\"arrival_milli\":{},\"scrub_milli\":{}}}",
                s.arrival_milli, s.scrub_milli
            ));
        }
        format!("{{{}}}", parts.join(","))
    }
}

/// The SLO dimensions a campaign can declare objectives on. The bench
/// driver maps these onto `milr_obs::SloSpec` suites; keeping the
/// declaration numeric here leaves `milr-fault` free of an obs
/// dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloDeclKind {
    /// Fraction of requests answered.
    Availability,
    /// 99th-percentile end-to-end latency under a threshold.
    LatencyP99,
    /// Fraction of heal episodes ending bit-exact.
    HealExactness,
    /// Fraction of scrub passes finding storage certifiable.
    Durability,
}

impl SloDeclKind {
    /// Stable name used in campaign JSON.
    pub fn name(&self) -> &'static str {
        match self {
            SloDeclKind::Availability => "availability",
            SloDeclKind::LatencyP99 => "latency_p99",
            SloDeclKind::HealExactness => "heal_exactness",
            SloDeclKind::Durability => "durability",
        }
    }
}

/// One declared SLO objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloDecl {
    /// Dimension.
    pub kind: SloDeclKind,
    /// Objective in milli-units (995 = 0.995).
    pub objective_milli: u32,
    /// Latency threshold for [`SloDeclKind::LatencyP99`]; ignored by
    /// the other kinds.
    pub latency_threshold_ns: u64,
}

impl SloDecl {
    /// Deterministic JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kind\":\"{}\",\"objective_milli\":{},\"latency_threshold_ns\":{}}}",
            self.kind.name(),
            self.objective_milli,
            self.latency_threshold_ns
        )
    }
}

/// A named, seeded chaos campaign with its SLO suite.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Campaign name (report key and artifact suffix).
    pub name: String,
    /// Seed driving every random draw of the campaign.
    pub seed: u64,
    /// The composed fault regimes.
    pub chaos: ChaosSpec,
    /// Declared SLO objectives this campaign must hold.
    pub slos: Vec<SloDecl>,
}

impl Campaign {
    /// Deterministic JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let slos: Vec<String> = self.slos.iter().map(SloDecl::to_json).collect();
        format!(
            "{{\"name\":\"{}\",\"seed\":{},\"chaos\":{},\"slos\":[{}]}}",
            self.name,
            self.seed,
            self.chaos.to_json(),
            slos.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_substrate::SubstrateKind;

    fn weights(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32 * 0.05 - 1.5).collect()
    }

    #[test]
    fn burst_plans_are_seed_deterministic_across_kinds() {
        for kind in SubstrateKind::ALL {
            for pattern in [
                BurstPattern::Row,
                BurstPattern::Column,
                BurstPattern::DoubleSidedRow,
            ] {
                let w = weights(300);
                let mut a = kind.store(&w);
                let mut b = kind.store(&w);
                let ra = inject_burst(&mut *a, pattern, 0.6, &mut FaultRng::seed(99));
                let rb = inject_burst(&mut *b, pattern, 0.6, &mut FaultRng::seed(99));
                assert_eq!(ra, rb, "{kind} {pattern:?}");
                assert!(ra.flipped_bits > 0, "{kind} {pattern:?}");
                assert_eq!(a.export_raw(), b.export_raw(), "{kind} {pattern:?}");
            }
        }
    }

    #[test]
    fn row_burst_stays_inside_its_stripes() {
        let w = weights(256);
        let mem = SubstrateKind::Secded.store(&w);
        let geo = mem.raw_geometry();
        let bits = plan_burst(
            geo,
            mem.raw_bits(),
            BurstPattern::Row,
            0.9,
            &mut FaultRng::seed(5),
        );
        assert!(!bits.is_empty());
        let rows: BTreeSet<usize> = bits.iter().map(|b| b / geo.row_bits()).collect();
        assert_eq!(rows.len(), 1, "row burst spilled across rows: {rows:?}");
    }

    #[test]
    fn column_burst_hits_one_offset_per_row() {
        let w = weights(256);
        let mem = SubstrateKind::Plain.store(&w);
        let geo = mem.raw_geometry();
        let bits = plan_burst(
            geo,
            mem.raw_bits(),
            BurstPattern::Column,
            1.0,
            &mut FaultRng::seed(7),
        );
        let offsets: BTreeSet<usize> = bits.iter().map(|b| b % geo.row_bits()).collect();
        assert_eq!(offsets.len(), 1, "column burst wandered: {offsets:?}");
        assert_eq!(bits.len(), geo.rows(mem.raw_bits()));
    }

    #[test]
    fn double_sided_burst_concentrates_on_the_victim() {
        let w = weights(4096);
        let mem = SubstrateKind::Plain.store(&w);
        let geo = mem.raw_geometry();
        let bits = plan_burst(
            geo,
            mem.raw_bits(),
            BurstPattern::DoubleSidedRow,
            0.4,
            &mut FaultRng::seed(11),
        );
        let mut per_row: std::collections::BTreeMap<usize, usize> = Default::default();
        for b in &bits {
            *per_row.entry(b / geo.row_bits()).or_default() += 1;
        }
        assert!(per_row.len() <= 3, "{per_row:?}");
        let victim = per_row.iter().max_by_key(|(_, &n)| n).unwrap();
        assert!(
            per_row.values().all(|&n| n <= *victim.1),
            "victim row is not the hottest: {per_row:?}"
        );
    }

    #[test]
    fn stuck_cells_reassert_only_after_correction() {
        let w = weights(200);
        let mut mem = SubstrateKind::Secded.store(&w);
        let plan = plan_stuck_at(mem.raw_bits(), 6, &mut FaultRng::seed(3));
        assert_eq!(plan.cells.len(), 6);
        // First assertion pins the cells; immediate re-assertion is a
        // no-op because nothing corrected them back.
        let first = assert_stuck(&mut *mem, &plan);
        assert!(first > 0, "all six cells already matched by chance");
        assert_eq!(assert_stuck(&mut *mem, &plan), 0);
        // A scrub corrects some cells away; re-assertion pins exactly
        // those again — and a blind re-flip would instead have healed
        // them, which is what raw_bit reads prevent.
        let scrub = mem.scrub();
        let reasserted = assert_stuck(&mut *mem, &plan);
        assert!(
            reasserted <= scrub.corrected + scrub.uncorrectable,
            "reasserted {reasserted} > corrected {}",
            scrub.corrected
        );
        for &(bit, value) in &plan.cells {
            assert_eq!(mem.raw_bit(bit), value, "cell {bit} not held");
        }
    }

    #[test]
    fn stuck_window_bounds_activity() {
        let spec = StuckAtSpec {
            bits: 4,
            from_milli: 100,
            until_milli: 600,
        };
        let horizon = 1_000_000;
        assert!(!spec.active(0, horizon));
        assert!(spec.active(100_000, horizon));
        assert!(spec.active(599_999, horizon));
        assert!(!spec.active(600_000, horizon));
        assert!(!spec.active(horizon, horizon));
    }

    #[test]
    fn chaos_json_is_stable_and_complete() {
        let chaos = ChaosSpec {
            bursts: Some(BurstSpec {
                pattern: BurstPattern::DoubleSidedRow,
                bursts: 3,
                flip_prob_milli: 450,
            }),
            stuck_at: Some(StuckAtSpec {
                bits: 8,
                from_milli: 100,
                until_milli: 700,
            }),
            torn_write: Some(TornWriteSpec {
                stage: "heal".to_string(),
                fires: 2,
                flips: 16,
            }),
            byzantine: Some(ByzantineSpec {
                donors: vec![0, 2],
                flips: 9,
            }),
            skew: Some(SkewSpec {
                arrival_milli: 500,
                scrub_milli: 1500,
            }),
        };
        assert!(!chaos.is_quiet());
        assert!(ChaosSpec::default().is_quiet());
        let campaign = Campaign {
            name: "everything".to_string(),
            seed: 42,
            chaos,
            slos: vec![SloDecl {
                kind: SloDeclKind::Availability,
                objective_milli: 700,
                latency_threshold_ns: 0,
            }],
        };
        let json = campaign.to_json();
        assert_eq!(json, campaign.clone().to_json(), "unstable serialization");
        for key in [
            "\"name\":\"everything\"",
            "\"seed\":42",
            "\"pattern\":\"double_sided_row\"",
            "\"stuck_at\"",
            "\"stage\":\"heal\"",
            "\"donors\":[0,2]",
            "\"arrival_milli\":500",
            "\"kind\":\"availability\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(ChaosSpec::default().to_json(), "{}");
    }

    #[test]
    fn skew_scale_is_exact_and_never_zero() {
        assert_eq!(SkewSpec::scale(1000, 1000), 1000);
        assert_eq!(SkewSpec::scale(1000, 500), 500);
        assert_eq!(SkewSpec::scale(1000, 2500), 2500);
        assert_eq!(SkewSpec::scale(1, 1), 1, "scaled gap must stay positive");
    }
}
