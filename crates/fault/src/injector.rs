use crate::FaultRng;
use milr_ecc::SecdedMemory;
use milr_substrate::WeightSubstrate;
use milr_xts::EncryptedMemory;
use std::collections::BTreeSet;

/// Summary of one injection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectionReport {
    /// Total bits flipped.
    pub flipped_bits: usize,
    /// Distinct raw words (weights, code words, or ciphertext blocks)
    /// touched.
    pub affected_words: usize,
}

/// Exact distinct-word counter for injection reports. The old scheme
/// (compare against the immediately previous word) was only correct for
/// monotone visit orders; correlated bursts revisit earlier words, so
/// every injector now counts through this.
#[derive(Default)]
struct WordSet {
    words: BTreeSet<usize>,
}

impl WordSet {
    fn insert(&mut self, word: usize) {
        self.words.insert(word);
    }

    fn len(&self) -> usize {
        self.words.len()
    }
}

/// Walks a Bernoulli(rate) process over `total_bits` positions using
/// geometric skip-sampling, invoking `visit` for each selected bit.
///
/// This is the single RNG-consuming loop every RBER injector shares, so
/// plaintext, SECDED, ciphertext, and composed substrates all draw the
/// *same* flip sequence from a given seed — the invariant behind the
/// seed-for-seed reproducibility of the benchmark arms.
fn walk_bits(total_bits: usize, rate: f64, rng: &mut FaultRng, mut visit: impl FnMut(usize)) {
    let mut pos = rng.geometric_gap(rate);
    while pos < total_bits {
        visit(pos);
        pos += 1 + rng.geometric_gap(rate);
    }
}

/// Flips each bit of the substrate's **raw representation**
/// independently with probability `rber` — experiment (1) of the paper
/// ("injecting the network with random bit flips with varying Raw Bit
/// Error Rate"), generalized over [`WeightSubstrate`]: for plain
/// buffers the raw bits are the 32 bits of each `f32` ("regardless of
/// bit position and role"); for ECC memory the 39-bit code words; for
/// encrypted memory the ciphertext.
///
/// Skip-sampling makes this O(expected flips), so paper-scale buffers
/// (millions of weights) inject in microseconds even at high rates.
///
/// # Panics
///
/// Panics unless `0 <= rber <= 1`.
pub fn inject_rber<S: WeightSubstrate + ?Sized>(
    memory: &mut S,
    rber: f64,
    rng: &mut FaultRng,
) -> InjectionReport {
    assert!((0.0..=1.0).contains(&rber), "rber {rber} out of range");
    let mut report = InjectionReport::default();
    if rber == 0.0 || memory.is_empty() {
        return report;
    }
    let mut words = WordSet::default();
    let total_bits = memory.raw_bits();
    walk_bits(total_bits, rber, rng, |pos| {
        memory.flip_raw_bit(pos);
        report.flipped_bits += 1;
        words.insert(memory.raw_word_of_bit(pos));
    });
    report.affected_words = words.len();
    report
}

/// Flips **every** bit of each weight independently selected with
/// probability `q` — experiment (2): "whole-weights are injected by
/// flipping every bit in a weight with a probability of q", modelling
/// the plaintext signature of ciphertext-space corruption.
///
/// Whole-weight errors are defined in *plaintext space*, so the generic
/// form reads the substrate's plaintext view, inverts the selected
/// weights, and writes them back through
/// [`WeightSubstrate::write_weights_sparse`]: only the selected words
/// (and, on XTS substrates, the 16-byte blocks holding them) are
/// re-encoded, so raw-space error state left by a prior injection on
/// *other* words survives and composed raw+plaintext campaigns keep
/// honest scrub statistics. For plain buffers this degenerates to
/// in-place bit inversion.
///
/// # Panics
///
/// Panics unless `0 <= q <= 1`.
pub fn inject_whole_weight<S: WeightSubstrate + ?Sized>(
    memory: &mut S,
    q: f64,
    rng: &mut FaultRng,
) -> InjectionReport {
    assert!((0.0..=1.0).contains(&q), "q {q} out of range");
    let mut report = InjectionReport::default();
    if q == 0.0 || memory.is_empty() {
        return report;
    }
    let weights = memory.read_weights();
    let mut updates = Vec::new();
    let mut idx = rng.geometric_gap(q);
    while idx < weights.len() {
        updates.push((idx, f32::from_bits(!weights[idx].to_bits())));
        report.flipped_bits += 32;
        report.affected_words += 1;
        idx += 1 + rng.geometric_gap(q);
    }
    if !updates.is_empty() {
        memory
            .write_weights_sparse(&updates)
            .expect("selected indices are in range");
    }
    report
}

/// Flips an explicit list of raw bits (deduplicated positions flip
/// once per occurrence — an even number of visits cancels out, like
/// real re-hammering). The report counts distinct words exactly, in
/// any visit order.
///
/// # Panics
///
/// Panics when any position is out of range.
pub fn inject_bits<S: WeightSubstrate + ?Sized>(memory: &mut S, bits: &[usize]) -> InjectionReport {
    let mut report = InjectionReport::default();
    let mut words = WordSet::default();
    for &bit in bits {
        memory.flip_raw_bit(bit);
        report.flipped_bits += 1;
        words.insert(memory.raw_word_of_bit(bit));
    }
    report.affected_words = words.len();
    report
}

/// Replaces every weight with a uniformly random value guaranteed to
/// differ from the original — experiment (3): "each layer individually
/// has all of its parameters replaced by random values, where none of
/// the values were the same as the original value".
///
/// Replacement values are random finite `f32` bit patterns in the same
/// broad magnitude range as trained weights (drawn from `[-1, 1)`), so
/// the corrupted layer is maximally wrong yet numerically well-behaved.
///
/// Like [`inject_whole_weight`], the write-back re-encodes the whole
/// buffer and therefore resets any raw-space error state on coded
/// substrates.
pub fn corrupt_layer<S: WeightSubstrate + ?Sized>(
    memory: &mut S,
    rng: &mut FaultRng,
) -> InjectionReport {
    let mut weights = memory.read_weights();
    for w in weights.iter_mut() {
        loop {
            // 24 random bits -> uniform in [-1, 1), like the substrate's
            // PRNG weights.
            let candidate = (rng.bits32() >> 8) as f32 / (1u32 << 23) as f32 - 1.0;
            if candidate != *w {
                *w = candidate;
                break;
            }
        }
    }
    let report = InjectionReport {
        flipped_bits: weights.len() * 32,
        affected_words: weights.len(),
    };
    if !weights.is_empty() {
        memory
            .write_weights(&weights)
            .expect("substrate accepts its own length");
    }
    report
}

/// Flips bits at rate `rber` across the 39-bit SECDED code words of an
/// ECC-protected buffer — the ciphertext-side error process for the ECC
/// and ECC+MILR arms of Figures 5/7/9.
///
/// Retained as a named entry point for the ECC arm; a thin wrapper over
/// the substrate-generic [`inject_rber`], so the drawn flip sequence is
/// identical.
///
/// # Panics
///
/// Panics unless `0 <= rber <= 1`.
pub fn inject_secded_rber(
    memory: &mut SecdedMemory,
    rber: f64,
    rng: &mut FaultRng,
) -> InjectionReport {
    inject_rber(memory, rber, rng)
}

/// Flips ciphertext bits at rate `rber` in an AES-XTS-encrypted weight
/// buffer — the encrypted-VM scenario: each flipped ciphertext bit
/// garbles a whole 16-byte block (4 weights) of plaintext.
///
/// Returns the report plus the indices of flipped ciphertext bits (so
/// callers can compute blast radii). Draws the same flip sequence as
/// the substrate-generic [`inject_rber`] over the same memory.
///
/// # Panics
///
/// Panics unless `0 <= rber <= 1`.
pub fn inject_ciphertext_rber(
    memory: &mut EncryptedMemory,
    rber: f64,
    rng: &mut FaultRng,
) -> (InjectionReport, Vec<usize>) {
    assert!((0.0..=1.0).contains(&rber), "rber {rber} out of range");
    let mut report = InjectionReport::default();
    let mut flipped = Vec::new();
    if rber == 0.0 || memory.is_empty() {
        return (report, flipped);
    }
    let mut blocks = WordSet::default();
    let total_bits = memory.raw_bits();
    walk_bits(total_bits, rber, rng, |pos| {
        memory.flip_raw_bit(pos);
        flipped.push(pos);
        report.flipped_bits += 1;
        blocks.insert(memory.raw_word_of_bit(pos));
    });
    report.affected_words = blocks.len();
    (report, flipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_ecc::Secded;
    use milr_substrate::{SubstrateKind, XtsSecdedMemory};
    use milr_xts::XtsCipher;

    fn weights(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32) * 0.01 - 1.0).collect()
    }

    #[test]
    fn rber_zero_is_noop() {
        let mut w = weights(100);
        let orig = w.clone();
        let report = inject_rber(&mut w, 0.0, &mut FaultRng::seed(1));
        assert_eq!(report, InjectionReport::default());
        assert_eq!(w, orig);
    }

    #[test]
    fn rber_flip_count_tracks_rate() {
        let mut w = weights(10_000); // 320k bits
        let report = inject_rber(&mut w, 1e-3, &mut FaultRng::seed(2));
        // Expect ~320 flips; accept a wide 3-sigma-ish band.
        assert!(
            report.flipped_bits > 200 && report.flipped_bits < 460,
            "{report:?}"
        );
        assert!(report.affected_words <= report.flipped_bits);
    }

    #[test]
    fn rber_one_flips_everything() {
        let mut w = weights(4);
        let orig = w.clone();
        let report = inject_rber(&mut w, 1.0, &mut FaultRng::seed(3));
        assert_eq!(report.flipped_bits, 4 * 32);
        assert_eq!(report.affected_words, 4);
        for (a, b) in w.iter().zip(orig.iter()) {
            assert_eq!(a.to_bits(), !b.to_bits());
        }
    }

    #[test]
    fn rber_is_reproducible() {
        let mut w1 = weights(1000);
        let mut w2 = weights(1000);
        inject_rber(&mut w1, 1e-2, &mut FaultRng::seed(9));
        inject_rber(&mut w2, 1e-2, &mut FaultRng::seed(9));
        // Compare bit patterns: flips can produce NaN, where `==` fails.
        let b1: Vec<u32> = w1.iter().map(|x| x.to_bits()).collect();
        let b2: Vec<u32> = w2.iter().map(|x| x.to_bits()).collect();
        assert_eq!(b1, b2);
    }

    #[test]
    fn rber_draws_identical_flip_sequence_across_substrates() {
        // The unified-injector invariant: with equal raw sizes and equal
        // seeds, the *positions* flipped are the same regardless of what
        // the raw bits mean.
        let w = weights(500);
        let mut plain = SubstrateKind::Plain.store(&w);
        let mut xts = SubstrateKind::Xts.store(&w);
        // Sizes differ (padding), so compare against a replay instead.
        let plain_report = inject_rber(&mut *plain, 2e-3, &mut FaultRng::seed(42));
        let mut replay = SubstrateKind::Plain.store(&w);
        let replay_report = inject_rber(&mut *replay, 2e-3, &mut FaultRng::seed(42));
        assert_eq!(plain_report, replay_report);
        assert_eq!(
            plain
                .read_weights()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            replay
                .read_weights()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>()
        );
        let xts_report = inject_rber(&mut *xts, 2e-3, &mut FaultRng::seed(42));
        assert!(xts_report.flipped_bits > 0);
    }

    #[test]
    fn whole_weight_inverts_selected_words() {
        let mut w = weights(5000);
        let orig = w.clone();
        let report = inject_whole_weight(&mut w, 0.01, &mut FaultRng::seed(4));
        assert!(report.affected_words > 10, "{report:?}");
        assert_eq!(report.flipped_bits, report.affected_words * 32);
        let mut seen = 0;
        for (a, b) in w.iter().zip(orig.iter()) {
            if a.to_bits() != b.to_bits() {
                assert_eq!(a.to_bits(), !b.to_bits(), "partial flip detected");
                seen += 1;
            }
        }
        assert_eq!(seen, report.affected_words);
    }

    #[test]
    fn whole_weight_through_encrypted_substrate() {
        // Whole-weight errors are plaintext-space: through an encrypted
        // substrate they must land on exactly the selected weights, not
        // on block-aligned groups.
        let w = weights(64);
        let mut mem = SubstrateKind::Xts.store(&w);
        let report = inject_whole_weight(&mut *mem, 0.2, &mut FaultRng::seed(12));
        assert!(report.affected_words > 0);
        let seen = mem.read_weights();
        let changed = seen
            .iter()
            .zip(w.iter())
            .filter(|(a, b)| a.to_bits() != b.to_bits())
            .count();
        assert_eq!(changed, report.affected_words);
        for (a, b) in seen.iter().zip(w.iter()) {
            if a.to_bits() != b.to_bits() {
                assert_eq!(a.to_bits(), !b.to_bits());
            }
        }
    }

    #[test]
    fn corrupt_layer_changes_every_weight() {
        let mut w = weights(257);
        let orig = w.clone();
        let report = corrupt_layer(&mut w, &mut FaultRng::seed(5));
        assert_eq!(report.affected_words, 257);
        for (a, b) in w.iter().zip(orig.iter()) {
            assert_ne!(a, b);
            assert!(a.is_finite());
            assert!((-1.0..1.0).contains(a));
        }
    }

    #[test]
    fn corrupt_layer_through_substrates() {
        let w = weights(33);
        for kind in SubstrateKind::ALL {
            let mut mem = kind.store(&w);
            let report = corrupt_layer(&mut *mem, &mut FaultRng::seed(6));
            assert_eq!(report.affected_words, 33, "{kind}");
            let seen = mem.read_weights();
            for (a, b) in seen.iter().zip(w.iter()) {
                assert_ne!(a, b, "{kind}");
            }
        }
    }

    #[test]
    fn secded_injection_is_correctable_at_low_rate() {
        let w = weights(2000);
        let mut mem = SecdedMemory::protect(&w);
        // Rate low enough that double errors in one 39-bit word are
        // unlikely.
        let report = inject_secded_rber(&mut mem, 1e-4, &mut FaultRng::seed(6));
        assert!(report.flipped_bits > 0);
        let (decoded, scrub) = mem.scrub();
        assert_eq!(scrub.uncorrectable, 0);
        assert_eq!(decoded, w);
    }

    #[test]
    fn secded_injection_at_high_rate_defeats_ecc() {
        let w = weights(2000);
        let mut mem = SecdedMemory::protect(&w);
        inject_secded_rber(&mut mem, 0.02, &mut FaultRng::seed(7));
        let (decoded, scrub) = mem.scrub();
        assert!(scrub.uncorrectable > 0, "{scrub:?}");
        assert_ne!(decoded, w);
    }

    #[test]
    fn secded_wrapper_matches_generic_injector() {
        let w = weights(1500);
        let mut a = SecdedMemory::protect(&w);
        let mut b = SecdedMemory::protect(&w);
        let ra = inject_secded_rber(&mut a, 3e-3, &mut FaultRng::seed(21));
        let rb = inject_rber(&mut b, 3e-3, &mut FaultRng::seed(21));
        assert_eq!(ra, rb);
        assert_eq!(a.words(), b.words());
        let _ = Secded::CODE_BITS; // keep the constant linked to its role
    }

    #[test]
    fn composed_substrate_survives_low_rate_rber() {
        // At low RBER nearly all codeword hits are single-bit: the
        // ciphertext-space ECC corrects them and the plaintext decrypts
        // intact — the composed substrate's reason to exist.
        let w = weights(4000);
        let mut mem = XtsSecdedMemory::protect(&w, SubstrateKind::cipher());
        let report = inject_rber(&mut mem, 1e-4, &mut FaultRng::seed(13));
        assert!(report.flipped_bits > 0);
        let summary = mem.scrub();
        if summary.uncorrectable == 0 {
            assert_eq!(mem.read_weights(), w);
        } else {
            assert_ne!(mem.read_weights(), w);
        }
    }

    #[test]
    fn ciphertext_injection_garbles_blocks() {
        let w = weights(64);
        let cipher = XtsCipher::new(&[1; 16], &[2; 16]);
        let mut mem = EncryptedMemory::encrypt(&w, cipher).unwrap();
        let (report, bits) = inject_ciphertext_rber(&mut mem, 5e-3, &mut FaultRng::seed(8));
        assert!(report.flipped_bits > 0);
        assert_eq!(report.flipped_bits, bits.len());
        let seen = mem.decrypt_all().unwrap();
        // Every flipped bit's blast radius contains changed weights.
        for &bit in &bits {
            let radius = mem.blast_radius(bit);
            assert!(
                radius.clone().any(|i| seen[i] != w[i]),
                "bit {bit} radius {radius:?} unchanged"
            );
        }
        // Weights outside all blast radii are intact.
        let garbled: std::collections::HashSet<usize> =
            bits.iter().flat_map(|&b| mem.blast_radius(b)).collect();
        for (i, (a, b)) in seen.iter().zip(w.iter()).enumerate() {
            if !garbled.contains(&i) {
                assert_eq!(a, b, "weight {i} outside blast radius changed");
            }
        }
    }

    #[test]
    fn ciphertext_wrapper_matches_generic_injector() {
        let w = weights(256);
        let cipher = XtsCipher::new(&[1; 16], &[2; 16]);
        let mut a = EncryptedMemory::encrypt(&w, cipher.clone()).unwrap();
        let mut b = EncryptedMemory::encrypt(&w, cipher).unwrap();
        let (ra, _) = inject_ciphertext_rber(&mut a, 4e-3, &mut FaultRng::seed(30));
        let rb = inject_rber(&mut b, 4e-3, &mut FaultRng::seed(30));
        assert_eq!(ra, rb);
        assert_eq!(a.ciphertext(), b.ciphertext());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rber_validates_probability() {
        inject_rber(&mut [0.0f32][..], 1.5, &mut FaultRng::seed(0));
    }

    #[test]
    fn rber_over_file_backed_substrates_matches_in_memory() {
        // The injectors are substrate-generic, so the same seed draws
        // the same flip sequence whether the raw image lives in RAM or
        // in paged file storage — file-backed raw space is just
        // another fault surface.
        let w = weights(300);
        for (mem_kind, file_kind) in SubstrateKind::ALL
            .into_iter()
            .zip(SubstrateKind::FILE_BACKED)
        {
            let mut mem = mem_kind.store(&w);
            let mut file = file_kind.store(&w);
            assert_eq!(mem.raw_bits(), file.raw_bits(), "{file_kind}");
            let a = inject_rber(&mut *mem, 3e-3, &mut FaultRng::seed(17));
            let b = inject_rber(&mut *file, 3e-3, &mut FaultRng::seed(17));
            assert_eq!(a, b, "{file_kind}");
            let ma: Vec<u32> = mem.read_weights().iter().map(|x| x.to_bits()).collect();
            let fa: Vec<u32> = file.read_weights().iter().map(|x| x.to_bits()).collect();
            assert_eq!(ma, fa, "{file_kind}: plaintext view diverged");
        }
    }

    #[test]
    fn affected_words_counts_distinct_words_exactly() {
        // Revisit word 0 after touching word 1: the old `last_word`
        // transition counter reported 3 affected words here; the
        // distinct count is 2.
        let mut w = weights(4);
        let report = inject_bits(&mut w[..], &[0, 35, 7]);
        assert_eq!(report.flipped_bits, 3);
        assert_eq!(report.affected_words, 2);
        // Two visits to the same bit cancel (re-hammering).
        let mut v = weights(4);
        let orig: Vec<u32> = v.iter().map(|x| x.to_bits()).collect();
        let report = inject_bits(&mut v[..], &[5, 5]);
        assert_eq!(report.flipped_bits, 2);
        assert_eq!(report.affected_words, 1);
        let now: Vec<u32> = v.iter().map(|x| x.to_bits()).collect();
        assert_eq!(now, orig);
    }

    #[test]
    fn affected_words_is_distinct_under_every_substrate() {
        // Property over all kinds: report.affected_words equals the
        // distinct raw_word_of_bit image of the flipped positions.
        let w = weights(600);
        for kind in SubstrateKind::ALL {
            let mut mem = kind.store(&w);
            let probe = kind.store(&w);
            let mut rng = FaultRng::seed(77);
            let report = inject_rber(&mut *mem, 4e-3, &mut rng);
            // Replay the identical flip sequence to recover positions.
            let mut rng2 = FaultRng::seed(77);
            let mut distinct = std::collections::HashSet::new();
            let mut pos = rng2.geometric_gap(4e-3);
            let mut flips = 0;
            while pos < probe.raw_bits() {
                distinct.insert(probe.raw_word_of_bit(pos));
                flips += 1;
                pos += 1 + rng2.geometric_gap(4e-3);
            }
            assert_eq!(report.flipped_bits, flips, "{kind}");
            assert_eq!(report.affected_words, distinct.len(), "{kind}");
        }
    }

    #[test]
    fn whole_weight_preserves_raw_error_state_on_coded_substrate() {
        // Satellite regression: compose a raw-space injection with a
        // plaintext-space injection on ONE SECDED substrate. The raw
        // double-bit error planted in word 0 must still be visible to
        // scrub after the whole-weight pass — the old whole-buffer
        // write-back re-encoded word 0 and reported a clean scrub.
        let w = weights(400);
        let mut mem = SecdedMemory::protect(&w);
        WeightSubstrate::flip_raw_bit(&mut mem, 2);
        WeightSubstrate::flip_raw_bit(&mut mem, 17); // word 0: uncorrectable
        let word0_before = mem.words()[0];
        let report = inject_whole_weight(&mut mem, 0.05, &mut FaultRng::seed(31));
        assert!(report.affected_words > 0);
        // Precondition for the assertion below: weight 0 was not among
        // the selected weights under this seed.
        assert_eq!(mem.words()[0], word0_before, "seed 31 selected weight 0");
        let (_, scrub) = mem.scrub();
        assert!(
            scrub.uncorrectable >= 1,
            "raw error state erased by whole-weight write-back: {scrub:?}"
        );
    }

    #[test]
    fn whole_weight_composes_with_raw_state_across_kinds() {
        // The selected weights must invert and unselected raw words (or
        // blocks) must keep their bytes bit-for-bit.
        let w = weights(128);
        for kind in SubstrateKind::ALL {
            let mut mem = kind.store(&w);
            let before = mem.export_raw();
            let report = inject_whole_weight(&mut *mem, 0.1, &mut FaultRng::seed(19));
            assert!(report.affected_words > 0, "{kind}");
            let seen = mem.read_weights();
            let changed = (0..w.len())
                .filter(|&i| seen[i].to_bits() != w[i].to_bits())
                .count();
            assert_eq!(changed, report.affected_words, "{kind}");
            for (a, b) in seen.iter().zip(w.iter()) {
                if a.to_bits() != b.to_bits() {
                    assert_eq!(a.to_bits(), !b.to_bits(), "{kind}: partial flip");
                }
            }
            // At least one raw byte region is untouched when fewer than
            // all weights were selected.
            if report.affected_words < w.len() {
                let after = mem.export_raw();
                assert!(
                    after.iter().zip(before.iter()).any(|(a, b)| a == b),
                    "{kind}"
                );
            }
        }
    }

    #[test]
    fn whole_weight_and_layer_corruption_reach_file_pages() {
        let w = weights(120);
        for kind in SubstrateKind::FILE_BACKED {
            let mut mem = kind.store(&w);
            let report = inject_whole_weight(&mut *mem, 0.1, &mut FaultRng::seed(23));
            assert!(report.affected_words > 0, "{kind}");
            let seen = mem.read_weights();
            let changed = seen
                .iter()
                .zip(w.iter())
                .filter(|(a, b)| a.to_bits() != b.to_bits())
                .count();
            assert_eq!(changed, report.affected_words, "{kind}");
            let mut mem = kind.store(&w);
            corrupt_layer(&mut *mem, &mut FaultRng::seed(24));
            for (a, b) in mem.read_weights().iter().zip(w.iter()) {
                assert_ne!(a, b, "{kind}");
            }
        }
    }
}
