use crate::FaultRng;
use milr_ecc::{Secded, SecdedMemory};
use milr_xts::EncryptedMemory;

/// Summary of one injection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectionReport {
    /// Total bits flipped.
    pub flipped_bits: usize,
    /// Distinct weights (or code words / ciphertext blocks) touched.
    pub affected_words: usize,
}

/// Flips each bit of each weight independently with probability `rber`
/// — experiment (1) of the paper: "injecting the network with random bit
/// flips with varying Raw Bit Error Rate", uniform over all 32 bit
/// positions of each `f32` (sign, exponent and mantissa alike).
///
/// Skip-sampling makes this O(expected flips), so paper-scale buffers
/// (millions of weights) inject in microseconds even at high rates.
///
/// # Panics
///
/// Panics unless `0 <= rber <= 1`.
pub fn inject_rber(weights: &mut [f32], rber: f64, rng: &mut FaultRng) -> InjectionReport {
    assert!((0.0..=1.0).contains(&rber), "rber {rber} out of range");
    let mut report = InjectionReport::default();
    if rber == 0.0 || weights.is_empty() {
        return report;
    }
    let total_bits = weights.len() * 32;
    let mut pos = rng.geometric_gap(rber);
    let mut last_word = usize::MAX;
    while pos < total_bits {
        let word = pos / 32;
        let bit = pos % 32;
        weights[word] = f32::from_bits(weights[word].to_bits() ^ (1u32 << bit));
        report.flipped_bits += 1;
        if word != last_word {
            report.affected_words += 1;
            last_word = word;
        }
        pos += 1 + rng.geometric_gap(rber);
    }
    report
}

/// Flips **every** bit of each weight independently selected with
/// probability `q` — experiment (2): "whole-weights are injected by
/// flipping every bit in a weight with a probability of q", modelling
/// the plaintext signature of ciphertext-space corruption.
///
/// # Panics
///
/// Panics unless `0 <= q <= 1`.
pub fn inject_whole_weight(weights: &mut [f32], q: f64, rng: &mut FaultRng) -> InjectionReport {
    assert!((0.0..=1.0).contains(&q), "q {q} out of range");
    let mut report = InjectionReport::default();
    if q == 0.0 || weights.is_empty() {
        return report;
    }
    let mut idx = rng.geometric_gap(q);
    while idx < weights.len() {
        weights[idx] = f32::from_bits(!weights[idx].to_bits());
        report.flipped_bits += 32;
        report.affected_words += 1;
        idx += 1 + rng.geometric_gap(q);
    }
    report
}

/// Replaces every weight with a uniformly random value guaranteed to
/// differ from the original — experiment (3): "each layer individually
/// has all of its parameters replaced by random values, where none of
/// the values were the same as the original value".
///
/// Replacement values are random finite `f32` bit patterns in the same
/// broad magnitude range as trained weights (drawn from `[-1, 1)`), so
/// the corrupted layer is maximally wrong yet numerically well-behaved.
pub fn corrupt_layer(weights: &mut [f32], rng: &mut FaultRng) -> InjectionReport {
    for w in weights.iter_mut() {
        loop {
            // 24 random bits -> uniform in [-1, 1), like the substrate's
            // PRNG weights.
            let candidate = (rng.bits32() >> 8) as f32 / (1u32 << 23) as f32 - 1.0;
            if candidate != *w {
                *w = candidate;
                break;
            }
        }
    }
    InjectionReport {
        flipped_bits: weights.len() * 32,
        affected_words: weights.len(),
    }
}

/// Flips bits at rate `rber` across the 39-bit SECDED code words of an
/// ECC-protected buffer — the ciphertext-side error process for the ECC
/// and ECC+MILR arms of Figures 5/7/9.
///
/// # Panics
///
/// Panics unless `0 <= rber <= 1`.
pub fn inject_secded_rber(
    memory: &mut SecdedMemory,
    rber: f64,
    rng: &mut FaultRng,
) -> InjectionReport {
    assert!((0.0..=1.0).contains(&rber), "rber {rber} out of range");
    let mut report = InjectionReport::default();
    if rber == 0.0 || memory.is_empty() {
        return report;
    }
    let bits_per = Secded::CODE_BITS as usize;
    let total_bits = memory.len() * bits_per;
    let mut pos = rng.geometric_gap(rber);
    let mut last_word = usize::MAX;
    while pos < total_bits {
        let word = pos / bits_per;
        let bit = (pos % bits_per) as u32;
        memory.flip_bit(word, bit);
        report.flipped_bits += 1;
        if word != last_word {
            report.affected_words += 1;
            last_word = word;
        }
        pos += 1 + rng.geometric_gap(rber);
    }
    report
}

/// Flips ciphertext bits at rate `rber` in an AES-XTS-encrypted weight
/// buffer — the encrypted-VM scenario: each flipped ciphertext bit
/// garbles a whole 16-byte block (4 weights) of plaintext.
///
/// Returns the report plus the indices of flipped ciphertext bits (so
/// callers can compute blast radii).
///
/// # Panics
///
/// Panics unless `0 <= rber <= 1`.
pub fn inject_ciphertext_rber(
    memory: &mut EncryptedMemory,
    rber: f64,
    rng: &mut FaultRng,
) -> (InjectionReport, Vec<usize>) {
    assert!((0.0..=1.0).contains(&rber), "rber {rber} out of range");
    let mut report = InjectionReport::default();
    let mut flipped = Vec::new();
    if rber == 0.0 || memory.is_empty() {
        return (report, flipped);
    }
    let total_bits = memory.ciphertext_bits();
    let mut pos = rng.geometric_gap(rber);
    let mut last_block = usize::MAX;
    while pos < total_bits {
        memory.flip_ciphertext_bit(pos);
        flipped.push(pos);
        report.flipped_bits += 1;
        let block = pos / 8 / milr_xts::BLOCK_BYTES;
        if block != last_block {
            report.affected_words += 1;
            last_block = block;
        }
        pos += 1 + rng.geometric_gap(rber);
    }
    (report, flipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_xts::XtsCipher;

    fn weights(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32) * 0.01 - 1.0).collect()
    }

    #[test]
    fn rber_zero_is_noop() {
        let mut w = weights(100);
        let orig = w.clone();
        let report = inject_rber(&mut w, 0.0, &mut FaultRng::seed(1));
        assert_eq!(report, InjectionReport::default());
        assert_eq!(w, orig);
    }

    #[test]
    fn rber_flip_count_tracks_rate() {
        let mut w = weights(10_000); // 320k bits
        let report = inject_rber(&mut w, 1e-3, &mut FaultRng::seed(2));
        // Expect ~320 flips; accept a wide 3-sigma-ish band.
        assert!(
            report.flipped_bits > 200 && report.flipped_bits < 460,
            "{report:?}"
        );
        assert!(report.affected_words <= report.flipped_bits);
    }

    #[test]
    fn rber_one_flips_everything() {
        let mut w = weights(4);
        let orig = w.clone();
        let report = inject_rber(&mut w, 1.0, &mut FaultRng::seed(3));
        assert_eq!(report.flipped_bits, 4 * 32);
        assert_eq!(report.affected_words, 4);
        for (a, b) in w.iter().zip(orig.iter()) {
            assert_eq!(a.to_bits(), !b.to_bits());
        }
    }

    #[test]
    fn rber_is_reproducible() {
        let mut w1 = weights(1000);
        let mut w2 = weights(1000);
        inject_rber(&mut w1, 1e-2, &mut FaultRng::seed(9));
        inject_rber(&mut w2, 1e-2, &mut FaultRng::seed(9));
        // Compare bit patterns: flips can produce NaN, where `==` fails.
        let b1: Vec<u32> = w1.iter().map(|x| x.to_bits()).collect();
        let b2: Vec<u32> = w2.iter().map(|x| x.to_bits()).collect();
        assert_eq!(b1, b2);
    }

    #[test]
    fn whole_weight_inverts_selected_words() {
        let mut w = weights(5000);
        let orig = w.clone();
        let report = inject_whole_weight(&mut w, 0.01, &mut FaultRng::seed(4));
        assert!(report.affected_words > 10, "{report:?}");
        assert_eq!(report.flipped_bits, report.affected_words * 32);
        let mut seen = 0;
        for (a, b) in w.iter().zip(orig.iter()) {
            if a.to_bits() != b.to_bits() {
                assert_eq!(a.to_bits(), !b.to_bits(), "partial flip detected");
                seen += 1;
            }
        }
        assert_eq!(seen, report.affected_words);
    }

    #[test]
    fn corrupt_layer_changes_every_weight() {
        let mut w = weights(257);
        let orig = w.clone();
        let report = corrupt_layer(&mut w, &mut FaultRng::seed(5));
        assert_eq!(report.affected_words, 257);
        for (a, b) in w.iter().zip(orig.iter()) {
            assert_ne!(a, b);
            assert!(a.is_finite());
            assert!((-1.0..1.0).contains(a));
        }
    }

    #[test]
    fn secded_injection_is_correctable_at_low_rate() {
        let w = weights(2000);
        let mut mem = SecdedMemory::protect(&w);
        // Rate low enough that double errors in one 39-bit word are
        // unlikely.
        let report = inject_secded_rber(&mut mem, 1e-4, &mut FaultRng::seed(6));
        assert!(report.flipped_bits > 0);
        let (decoded, scrub) = mem.scrub();
        assert_eq!(scrub.uncorrectable, 0);
        assert_eq!(decoded, w);
    }

    #[test]
    fn secded_injection_at_high_rate_defeats_ecc() {
        let w = weights(2000);
        let mut mem = SecdedMemory::protect(&w);
        inject_secded_rber(&mut mem, 0.02, &mut FaultRng::seed(7));
        let (decoded, scrub) = mem.scrub();
        assert!(scrub.uncorrectable > 0, "{scrub:?}");
        assert_ne!(decoded, w);
    }

    #[test]
    fn ciphertext_injection_garbles_blocks() {
        let w = weights(64);
        let cipher = XtsCipher::new(&[1; 16], &[2; 16]);
        let mut mem = EncryptedMemory::encrypt(&w, cipher).unwrap();
        let (report, bits) = inject_ciphertext_rber(&mut mem, 5e-3, &mut FaultRng::seed(8));
        assert!(report.flipped_bits > 0);
        assert_eq!(report.flipped_bits, bits.len());
        let seen = mem.decrypt_all().unwrap();
        // Every flipped bit's blast radius contains changed weights.
        for &bit in &bits {
            let radius = mem.blast_radius(bit);
            assert!(
                radius.clone().any(|i| seen[i] != w[i]),
                "bit {bit} radius {radius:?} unchanged"
            );
        }
        // Weights outside all blast radii are intact.
        let garbled: std::collections::HashSet<usize> =
            bits.iter().flat_map(|&b| mem.blast_radius(b)).collect();
        for (i, (a, b)) in seen.iter().zip(w.iter()).enumerate() {
            if !garbled.contains(&i) {
                assert_eq!(a, b, "weight {i} outside blast radius changed");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rber_validates_probability() {
        inject_rber(&mut [0.0], 1.5, &mut FaultRng::seed(0));
    }
}
