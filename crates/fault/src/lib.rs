//! # milr-fault
//!
//! Seeded fault-injection simulator reproducing the three experiment
//! families of the MILR paper's evaluation (§V-A):
//!
//! 1. **Random bit flips** at a raw bit error rate (RBER) `p` — every bit
//!    of every `f32` weight flips independently with probability `p`,
//!    "regardless of bit position and role" ([`inject_rber`]).
//! 2. **Whole-weight errors** with probability `q` — every bit of a
//!    selected weight is flipped ([`inject_whole_weight`]), the plaintext
//!    signature of a ciphertext-space error under AES-XTS.
//! 3. **Whole-layer corruption** — every parameter of a layer replaced by
//!    a random value, "where none of the values were the same as the
//!    original value" ([`corrupt_layer`]).
//!
//! Plus the two memory models those errors flow through:
//!
//! * [`inject_secded_rber`] flips bits in (39,32) SECDED code words —
//!   the ECC-protected-DRAM baseline;
//! * [`inject_ciphertext_rber`] flips bits in AES-XTS ciphertext — the
//!   encrypted-VM scenario where each flipped bit garbles a whole
//!   16-byte block of weights after decryption.
//!
//! All injectors draw from a caller-provided seeded RNG, so every
//! experiment run is reproducible.
//!
//! ```
//! use milr_fault::{inject_rber, FaultRng};
//!
//! let mut weights = vec![1.0f32; 1000];
//! let mut rng = FaultRng::seed(7);
//! let report = inject_rber(&mut weights, 1e-3, &mut rng);
//! // 32,000 bits at p = 1e-3 : tens of flips expected.
//! assert!(report.flipped_bits > 0);
//! assert!(weights.iter().any(|&w| w != 1.0));
//! ```

#![deny(missing_docs)]

mod injector;
mod rng;

pub use injector::{
    corrupt_layer, inject_ciphertext_rber, inject_rber, inject_secded_rber,
    inject_whole_weight, InjectionReport,
};
pub use rng::FaultRng;
