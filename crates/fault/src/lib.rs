//! # milr-fault
//!
//! Seeded, **substrate-generic** fault injection reproducing the three
//! experiment families of the MILR paper's evaluation (§V-A):
//!
//! 1. **Random bit flips** at a raw bit error rate (RBER) `p` — every
//!    bit of the substrate's *raw representation* flips independently
//!    with probability `p` ([`inject_rber`]). Over a plain buffer that
//!    is every bit of every `f32` "regardless of bit position and
//!    role"; over [`milr_ecc::SecdedMemory`] the 39-bit code words;
//!    over [`milr_xts::EncryptedMemory`] or
//!    [`milr_substrate::XtsSecdedMemory`] the ciphertext.
//! 2. **Whole-weight errors** with probability `q` — every bit of a
//!    selected weight is flipped in plaintext space
//!    ([`inject_whole_weight`]), the plaintext signature of a
//!    ciphertext-space error under AES-XTS.
//! 3. **Whole-layer corruption** — every parameter of a layer replaced
//!    by a random value, "where none of the values were the same as the
//!    original value" ([`corrupt_layer`]).
//!
//! All injectors are generic over
//! [`milr_substrate::WeightSubstrate`]; bare `&mut [f32]` / `&mut
//! Vec<f32>` buffers implement the trait as plain memory, so existing
//! call sites keep working unchanged. [`inject_secded_rber`] and
//! [`inject_ciphertext_rber`] remain as named arm entry points and draw
//! the same flip sequences as the generic path.
//!
//! All injectors draw from a caller-provided seeded RNG, so every
//! experiment run is reproducible.
//!
//! ```
//! use milr_fault::{inject_rber, FaultRng};
//!
//! let mut weights = vec![1.0f32; 1000];
//! let mut rng = FaultRng::seed(7);
//! let report = inject_rber(&mut weights, 1e-3, &mut rng);
//! // 32,000 bits at p = 1e-3 : tens of flips expected.
//! assert!(report.flipped_bits > 0);
//! assert!(weights.iter().any(|&w| w != 1.0));
//! ```

#![deny(missing_docs)]

mod campaign;
mod injector;
mod rng;

pub use campaign::{
    assert_stuck, inject_burst, milli, plan_burst, plan_stuck_at, BurstPattern, BurstSpec,
    ByzantineSpec, Campaign, ChaosSpec, SkewSpec, SloDecl, SloDeclKind, StuckAtPlan, StuckAtSpec,
    TornWriteSpec,
};
pub use injector::{
    corrupt_layer, inject_bits, inject_ciphertext_rber, inject_rber, inject_secded_rber,
    inject_whole_weight, InjectionReport,
};
pub use rng::FaultRng;
