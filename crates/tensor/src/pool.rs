use crate::{Result, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Pooling geometry: square window and stride.
///
/// The paper's networks use non-overlapping 2×2 max pooling; the substrate
/// supports arbitrary window/stride combinations with valid semantics
/// (windows that fall entirely inside the input).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolSpec {
    /// Window side length.
    pub window: usize,
    /// Stride along both spatial axes.
    pub stride: usize,
}

impl PoolSpec {
    /// Creates a pool spec.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if window or stride is
    /// zero.
    pub fn new(window: usize, stride: usize) -> Result<Self> {
        if window == 0 || stride == 0 {
            return Err(TensorError::InvalidGeometry(
                "pool window and stride must be positive".into(),
            ));
        }
        Ok(PoolSpec { window, stride })
    }

    /// Output spatial length for an input length.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] when the window does not
    /// fit.
    pub fn output_dim(&self, input: usize) -> Result<usize> {
        if input < self.window {
            return Err(TensorError::InvalidGeometry(format!(
                "pool window {} larger than input {}",
                self.window, input
            )));
        }
        Ok((input - self.window) / self.stride + 1)
    }
}

fn pool2d(
    input: &Tensor,
    spec: &PoolSpec,
    mut reduce: impl FnMut(&[f32]) -> f32,
) -> Result<Tensor> {
    if input.ndim() != 4 {
        return Err(TensorError::RankMismatch {
            op: "pool2d",
            expected: 4,
            actual: input.ndim(),
        });
    }
    let (b, h, w, c) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    );
    let gh = spec.output_dim(h)?;
    let gw = spec.output_dim(w)?;
    let data = input.data();
    let mut out = Vec::with_capacity(b * gh * gw * c);
    let mut window = Vec::with_capacity(spec.window * spec.window);
    for img in 0..b {
        let base = img * h * w * c;
        for i in 0..gh {
            for j in 0..gw {
                for z in 0..c {
                    window.clear();
                    for dy in 0..spec.window {
                        for dx in 0..spec.window {
                            let y = i * spec.stride + dy;
                            let x = j * spec.stride + dx;
                            window.push(data[base + (y * w + x) * c + z]);
                        }
                    }
                    out.push(reduce(&window));
                }
            }
        }
    }
    Tensor::from_vec(out, &[b, gh, gw, c])
}

/// Max pooling over a `(B, H, W, C)` batch.
///
/// Pooling layers are not invertible, so MILR stores an input checkpoint
/// before each one (paper §IV-C); this function only provides the forward
/// semantics.
///
/// # Errors
///
/// Returns an error for non-rank-4 inputs or non-fitting geometry.
pub fn max_pool2d(input: &Tensor, spec: &PoolSpec) -> Result<Tensor> {
    pool2d(input, spec, |w| {
        w.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x))
    })
}

/// Average pooling over a `(B, H, W, C)` batch.
///
/// # Errors
///
/// Returns an error for non-rank-4 inputs or non-fitting geometry.
pub fn avg_pool2d(input: &Tensor, spec: &PoolSpec) -> Result<Tensor> {
    pool2d(input, spec, |w| {
        (w.iter().map(|&x| x as f64).sum::<f64>() / w.len() as f64) as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seq_tensor(dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|x| x as f32).collect(), dims).unwrap()
    }

    #[test]
    fn spec_validates() {
        assert!(PoolSpec::new(0, 2).is_err());
        assert!(PoolSpec::new(2, 0).is_err());
        assert_eq!(PoolSpec::new(2, 2).unwrap().output_dim(12).unwrap(), 6);
        assert!(PoolSpec::new(5, 1).unwrap().output_dim(4).is_err());
    }

    #[test]
    fn max_pool_takes_window_maximum() {
        let input = seq_tensor(&[1, 4, 4, 1]);
        let spec = PoolSpec::new(2, 2).unwrap();
        let out = max_pool2d(&input, &spec).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 2, 1]);
        assert_eq!(out.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_takes_window_mean() {
        let input = seq_tensor(&[1, 2, 2, 1]);
        let spec = PoolSpec::new(2, 2).unwrap();
        let out = avg_pool2d(&input, &spec).unwrap();
        assert_eq!(out.data(), &[1.5]);
    }

    #[test]
    fn pooling_is_per_channel() {
        // Channel 1 = channel 0 + 100; maxima must stay separated.
        let mut input = Tensor::zeros(&[1, 2, 2, 2]);
        for y in 0..2 {
            for x in 0..2 {
                let v = (y * 2 + x) as f32;
                input.set(&[0, y, x, 0], v).unwrap();
                input.set(&[0, y, x, 1], v + 100.0).unwrap();
            }
        }
        let out = max_pool2d(&input, &PoolSpec::new(2, 2).unwrap()).unwrap();
        assert_eq!(out.at(&[0, 0, 0, 0]).unwrap(), 3.0);
        assert_eq!(out.at(&[0, 0, 0, 1]).unwrap(), 103.0);
    }

    #[test]
    fn pooling_handles_negative_values() {
        let input = Tensor::full(&[1, 2, 2, 1], -3.0);
        let out = max_pool2d(&input, &PoolSpec::new(2, 2).unwrap()).unwrap();
        assert_eq!(out.data(), &[-3.0]);
    }

    #[test]
    fn rejects_wrong_rank() {
        let input = Tensor::zeros(&[4, 4, 1]);
        assert!(max_pool2d(&input, &PoolSpec::new(2, 2).unwrap()).is_err());
    }

    proptest! {
        #[test]
        fn max_pool_dominates_avg_pool(
            vals in proptest::collection::vec(-10.0f32..10.0, 16),
        ) {
            let input = Tensor::from_vec(vals, &[1, 4, 4, 1]).unwrap();
            let spec = PoolSpec::new(2, 2).unwrap();
            let mx = max_pool2d(&input, &spec).unwrap();
            let av = avg_pool2d(&input, &spec).unwrap();
            for (m, a) in mx.data().iter().zip(av.data().iter()) {
                prop_assert!(m >= a);
            }
        }

        #[test]
        fn pool_output_bounded_by_input_extremes(
            vals in proptest::collection::vec(-5.0f32..5.0, 36),
        ) {
            let input = Tensor::from_vec(vals.clone(), &[1, 6, 6, 1]).unwrap();
            let spec = PoolSpec::new(3, 3).unwrap();
            let out = max_pool2d(&input, &spec).unwrap();
            let max = vals.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            for &o in out.data() {
                prop_assert!(o <= max);
            }
        }
    }
}
