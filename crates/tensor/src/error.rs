use std::fmt;

/// Errors produced by tensor operations.
///
/// Every fallible operation in this crate returns this type; it is
/// `Send + Sync + 'static` so it composes with downstream error handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data
    /// length supplied.
    ShapeDataMismatch {
        /// Number of elements the shape requires.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors had incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Human-readable operation name (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: Vec<usize>,
        /// Shape of the right/second operand.
        rhs: Vec<usize>,
    },
    /// An operation required a tensor of a specific rank.
    RankMismatch {
        /// Human-readable operation name.
        op: &'static str,
        /// Required rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// A convolution/pooling geometry was invalid (e.g. filter larger than
    /// padded input, zero stride).
    InvalidGeometry(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => write!(
                f,
                "shape requires {expected} elements but {actual} were provided"
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "incompatible shapes for {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => write!(f, "{op} requires rank {expected}, got rank {actual}"),
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<TensorError> = vec![
            TensorError::ShapeDataMismatch {
                expected: 4,
                actual: 3,
            },
            TensorError::ShapeMismatch {
                op: "matmul",
                lhs: vec![2, 3],
                rhs: vec![4, 5],
            },
            TensorError::RankMismatch {
                op: "conv2d",
                expected: 3,
                actual: 2,
            },
            TensorError::IndexOutOfBounds {
                index: vec![9],
                shape: vec![3],
            },
            TensorError::InvalidGeometry("filter larger than input".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
