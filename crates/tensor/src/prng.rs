use crate::Tensor;

/// Deterministic pseudo-random tensor generator (xoshiro256\*\* seeded by
/// SplitMix64).
///
/// MILR stores only 64-bit *seeds* in error-resistant memory and
/// regenerates detection inputs, dummy parameters, dummy filters and
/// dummy input rows on demand (paper §III: "By using pseudo-random number
/// generator, we only need to memorize the initial seed"). Stability of
/// the stream across processes and library versions is therefore part of
/// the storage format, which is why this is a self-contained
/// implementation rather than a wrapper over an external RNG whose
/// algorithm may change between releases.
///
/// ```
/// use milr_tensor::TensorRng;
///
/// let mut a = TensorRng::new(42);
/// let mut b = TensorRng::new(42);
/// assert_eq!(a.uniform_tensor(&[3, 3]), b.uniform_tensor(&[3, 3]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorRng {
    state: [u64; 4],
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state, per
        // the reference implementation recommendation.
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TensorRng {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next raw 64-bit output (xoshiro256\*\*).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform `f32` in `[-1, 1)`, derived from the top 24 bits.
    pub fn uniform(&mut self) -> f32 {
        let bits = (self.next_u64() >> 40) as u32; // 24 random bits
        (bits as f32 / (1u32 << 23) as f32) - 1.0
    }

    /// A tensor of uniform `[-1, 1)` values with the given shape.
    ///
    /// This is the generator behind MILR's seeded detection inputs and
    /// dummy data: the same `(seed, shape)` pair always yields the same
    /// tensor.
    pub fn uniform_tensor(&mut self, dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|_| self.uniform()).collect();
        Tensor::from_vec(data, dims).expect("length matches by construction")
    }

    /// Fills a slice with uniform values.
    pub fn fill_uniform(&mut self, out: &mut [f32]) {
        for x in out {
            *x = self.uniform();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TensorRng::new(7);
        let mut b = TensorRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TensorRng::new(1);
        let mut b = TensorRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_is_stable_forever() {
        // Regression pin: these values are part of MILR's storage format
        // (stored seeds must regenerate identical tensors in any build).
        let mut rng = TensorRng::new(0xDEAD_BEEF);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                14219364052333592195,
                7332719151195188792,
                6122488799882574371,
                4799409443904522999
            ]
        );
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = TensorRng::new(3);
        for _ in 0..10_000 {
            let x = rng.uniform();
            assert!((-1.0..1.0).contains(&x), "{x} out of range");
        }
    }

    #[test]
    fn uniform_covers_both_halves() {
        let mut rng = TensorRng::new(5);
        let n = 10_000;
        let neg = (0..n).filter(|_| rng.uniform() < 0.0).count();
        // Roughly half negative: loose 3-sigma bound.
        assert!(neg > n * 4 / 10 && neg < n * 6 / 10, "neg={neg}");
    }

    #[test]
    fn tensor_generation_consumes_stream() {
        let mut rng = TensorRng::new(9);
        let t1 = rng.uniform_tensor(&[2, 2]);
        let t2 = rng.uniform_tensor(&[2, 2]);
        assert_ne!(t1, t2);
    }

    #[test]
    fn fill_matches_tensor_generation() {
        let mut a = TensorRng::new(11);
        let mut b = TensorRng::new(11);
        let t = a.uniform_tensor(&[6]);
        let mut buf = [0.0f32; 6];
        b.fill_uniform(&mut buf);
        assert_eq!(t.data(), &buf);
    }

    proptest! {
        #[test]
        fn reproducible_for_any_seed(seed in proptest::num::u64::ANY) {
            let t1 = TensorRng::new(seed).uniform_tensor(&[8]);
            let t2 = TensorRng::new(seed).uniform_tensor(&[8]);
            prop_assert_eq!(t1, t2);
        }

        #[test]
        fn mean_is_near_zero(seed in proptest::num::u64::ANY) {
            let t = TensorRng::new(seed).uniform_tensor(&[4096]);
            let mean = t.sum() / 4096.0;
            prop_assert!(mean.abs() < 0.1, "mean {mean}");
        }
    }
}
