//! # milr-tensor
//!
//! Dense, row-major `f32` tensor substrate for the MILR reproduction.
//!
//! The MILR paper ([Ponader, Kundu, Solihin — DSN 2021]) exploits the
//! algebraic relationship between the input, output and parameters of CNN
//! layers. This crate provides the tensor machinery those layers are built
//! on: shapes and indexing, matrix multiplication, `im2col` patch
//! extraction (the bridge between convolution and the linear systems MILR
//! solves), pooling, padding, and seeded pseudo-random tensor generation
//! (MILR regenerates detection inputs and dummy parameters from stored
//! seeds instead of storing the tensors themselves).
//!
//! Weights in the paper are IEEE-754 `f32`; bit-level fault injection
//! depends on that exact representation, so the tensor element type is
//! fixed to `f32`. Recovery mathematics happens in `f64` inside
//! `milr-linalg`; conversion helpers live on [`Tensor`].
//!
//! ## Example
//!
//! ```
//! use milr_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c, a);
//! # Ok::<(), milr_tensor::TensorError>(())
//! ```

#![deny(missing_docs)]

mod conv;
mod error;
mod ops;
mod pool;
mod prng;
mod shape;
mod tensor;

pub use conv::{col2im_accumulate, conv2d, im2col, ConvSpec, Padding};
pub use error::TensorError;
pub use ops::{argmax, matmul};
pub use pool::{avg_pool2d, max_pool2d, PoolSpec};
pub use prng::TensorRng;
pub use shape::Shape;
pub use tensor::Tensor;

/// Result alias for tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
