use serde::{Deserialize, Serialize};
use std::fmt;

/// The dimensions of a [`Tensor`](crate::Tensor), row-major.
///
/// A `Shape` is a thin wrapper over a `Vec<usize>` that provides the index
/// arithmetic used across the crate: element counts, row-major strides,
/// and flat-index conversion.
///
/// ```
/// use milr_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.flatten_index(&[1, 2, 3]), Some(23));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// A rank-0 (scalar) shape with one element.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (rank).
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements. A scalar shape has one element.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.ndim()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides (in elements, not bytes).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat row-major offset.
    ///
    /// Returns `None` if the index rank differs from the shape rank or any
    /// coordinate is out of bounds.
    pub fn flatten_index(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.0.len() {
            return None;
        }
        let mut flat = 0usize;
        let mut stride = 1usize;
        for (i, (&idx, &dim)) in index.iter().zip(self.0.iter()).enumerate().rev() {
            let _ = i;
            if idx >= dim {
                return None;
            }
            flat += idx * stride;
            stride *= dim;
        }
        Some(flat)
    }

    /// Converts a flat row-major offset into a multi-dimensional index.
    ///
    /// Returns `None` if the offset is out of range.
    pub fn unflatten_index(&self, mut flat: usize) -> Option<Vec<usize>> {
        if flat >= self.numel() {
            return None;
        }
        let mut index = vec![0usize; self.0.len()];
        for (i, stride) in self.strides().iter().enumerate() {
            index[i] = flat / stride;
            flat %= stride;
        }
        Some(index)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.flatten_index(&[]), Some(0));
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[2, 3]).strides(), vec![3, 1]);
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
    }

    #[test]
    fn flatten_rejects_bad_rank_and_bounds() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.flatten_index(&[1]), None);
        assert_eq!(s.flatten_index(&[2, 0]), None);
        assert_eq!(s.flatten_index(&[0, 3]), None);
        assert_eq!(s.flatten_index(&[1, 2]), Some(5));
    }

    #[test]
    fn unflatten_rejects_out_of_range() {
        let s = Shape::new(&[2, 2]);
        assert_eq!(s.unflatten_index(4), None);
        assert_eq!(s.unflatten_index(3), Some(vec![1, 1]));
    }

    #[test]
    fn display_formats_like_tuple() {
        assert_eq!(Shape::new(&[26, 26, 32]).to_string(), "(26, 26, 32)");
        assert_eq!(Shape::new(&[10]).to_string(), "(10)");
    }

    proptest! {
        #[test]
        fn flatten_unflatten_roundtrip(dims in proptest::collection::vec(1usize..6, 1..4)) {
            let shape = Shape::new(&dims);
            for flat in 0..shape.numel() {
                let idx = shape.unflatten_index(flat).unwrap();
                prop_assert_eq!(shape.flatten_index(&idx), Some(flat));
            }
        }

        #[test]
        fn numel_matches_stride_zero(dims in proptest::collection::vec(1usize..6, 1..4)) {
            let shape = Shape::new(&dims);
            let strides = shape.strides();
            prop_assert_eq!(strides[0] * dims[0], shape.numel());
        }
    }
}
