use crate::{matmul, Result, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Spatial padding policy for convolution and pooling, mirroring the two
/// modes used by the paper's networks: *valid* (MNIST net, Table I) and
/// *same* (both CIFAR-10 nets, Tables II-III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Padding {
    /// No padding; output shrinks by `F - 1` per spatial dimension.
    Valid,
    /// Zero-padding chosen so that `G = ceil(H / S)` (TensorFlow
    /// semantics, asymmetric when the total pad is odd).
    Same,
}

/// Convolution geometry: square filter size, stride, and padding policy.
///
/// The paper's output-size relation `G = (M − F + 2P)/S + 1` (§IV-B) is
/// implemented by [`ConvSpec::output_dim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Filter side length `F` (filters are `F × F × Z`).
    pub filter: usize,
    /// Stride `S` along both spatial axes.
    pub stride: usize,
    /// Padding policy.
    pub padding: Padding,
}

impl ConvSpec {
    /// Creates a spec, validating the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if `filter` or `stride`
    /// is zero.
    pub fn new(filter: usize, stride: usize, padding: Padding) -> Result<Self> {
        if filter == 0 {
            return Err(TensorError::InvalidGeometry(
                "filter size must be positive".into(),
            ));
        }
        if stride == 0 {
            return Err(TensorError::InvalidGeometry(
                "stride must be positive".into(),
            ));
        }
        Ok(ConvSpec {
            filter,
            stride,
            padding,
        })
    }

    /// Output length `G` and leading pad amount for an input of spatial
    /// length `input`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] when a valid-padding
    /// filter does not fit in the input.
    pub fn output_dim(&self, input: usize) -> Result<(usize, usize)> {
        match self.padding {
            Padding::Valid => {
                if input < self.filter {
                    return Err(TensorError::InvalidGeometry(format!(
                        "valid padding requires input {} >= filter {}",
                        input, self.filter
                    )));
                }
                Ok(((input - self.filter) / self.stride + 1, 0))
            }
            Padding::Same => {
                let g = input.div_ceil(self.stride);
                let needed = (g - 1) * self.stride + self.filter;
                let total_pad = needed.saturating_sub(input);
                Ok((g, total_pad / 2))
            }
        }
    }
}

/// Extracts convolution patches from a single `(H, W, C)` image into a
/// `(G_h·G_w, F·F·C)` matrix (`im2col`).
///
/// Row `i·G_w + j` holds the receptive field of output location `(i, j)`
/// flattened in `(f1, f2, z)` order — exactly the order in which a
/// row-major `(F, F, Z, Y)` filter tensor flattens to a `(F·F·C, Y)`
/// matrix, so `conv = im2col(x) × filters`. This matrix *is* the
/// coefficient matrix of the linear system MILR solves to recover filters
/// (paper §IV-B-b): each row is one equation, each filter one unknown
/// column vector.
///
/// # Errors
///
/// Returns an error unless `input` is rank 3 and the geometry fits.
pub fn im2col(input: &Tensor, spec: &ConvSpec) -> Result<Tensor> {
    if input.ndim() != 3 {
        return Err(TensorError::RankMismatch {
            op: "im2col",
            expected: 3,
            actual: input.ndim(),
        });
    }
    let (h, w, c) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
    );
    let (gh, pad_h) = spec.output_dim(h)?;
    let (gw, pad_w) = spec.output_dim(w)?;
    let f = spec.filter;
    let s = spec.stride;
    let cols = f * f * c;
    let mut out = vec![0.0f32; gh * gw * cols];
    let data = input.data();
    for i in 0..gh {
        for j in 0..gw {
            let row_base = (i * gw + j) * cols;
            for f1 in 0..f {
                // Signed arithmetic: padding can place the filter off the
                // image edge, where the contribution is zero.
                let y = (i * s + f1) as isize - pad_h as isize;
                if y < 0 || y >= h as isize {
                    continue;
                }
                for f2 in 0..f {
                    let x = (j * s + f2) as isize - pad_w as isize;
                    if x < 0 || x >= w as isize {
                        continue;
                    }
                    let src = ((y as usize * w) + x as usize) * c;
                    let dst = row_base + (f1 * f + f2) * c;
                    out[dst..dst + c].copy_from_slice(&data[src..src + c]);
                }
            }
        }
    }
    Tensor::from_vec(out, &[gh * gw, cols])
}

/// 2-D convolution over a batch: input `(B, H, W, C)`, filters
/// `(F, F, C, Y)`, output `(B, G_h, G_w, Y)`.
///
/// Implements the paper's Equation 4 via `im2col` + matmul per image.
///
/// # Errors
///
/// Returns an error for rank/channel mismatches or impossible geometry.
pub fn conv2d(input: &Tensor, filters: &Tensor, spec: &ConvSpec) -> Result<Tensor> {
    if input.ndim() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d",
            expected: 4,
            actual: input.ndim(),
        });
    }
    if filters.ndim() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d filters",
            expected: 4,
            actual: filters.ndim(),
        });
    }
    let (b, h, w, c) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    );
    let (f1, f2, z, y) = (
        filters.shape().dim(0),
        filters.shape().dim(1),
        filters.shape().dim(2),
        filters.shape().dim(3),
    );
    if f1 != spec.filter || f2 != spec.filter {
        return Err(TensorError::InvalidGeometry(format!(
            "filter tensor is {f1}x{f2} but spec says {0}x{0}",
            spec.filter
        )));
    }
    if z != c {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d channels",
            lhs: input.shape().dims().to_vec(),
            rhs: filters.shape().dims().to_vec(),
        });
    }
    let (gh, _) = spec.output_dim(h)?;
    let (gw, _) = spec.output_dim(w)?;
    let filter_mat = filters.reshape(&[f1 * f2 * z, y])?;
    let mut out = Vec::with_capacity(b * gh * gw * y);
    for img in 0..b {
        let image = slice_batch(input, img)?;
        let cols = im2col(&image, spec)?;
        let prod = matmul(&cols, &filter_mat)?;
        out.extend_from_slice(prod.data());
    }
    Tensor::from_vec(out, &[b, gh, gw, y])
}

/// Reassembles per-patch values into an image, averaging overlapping
/// contributions.
///
/// `patches` has the `im2col` layout `(G_h·G_w, F·F·C)`. This is the
/// final step of MILR's convolution *backward pass* (paper §IV-B-a):
/// after each receptive field is recovered by solving its `Y`-equation
/// system, the overlapping solutions are combined into the layer input.
/// Padded (off-image) positions are skipped.
///
/// # Errors
///
/// Returns an error when the patch matrix does not match the geometry.
pub fn col2im_accumulate(
    patches: &Tensor,
    h: usize,
    w: usize,
    c: usize,
    spec: &ConvSpec,
) -> Result<Tensor> {
    if patches.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            op: "col2im",
            expected: 2,
            actual: patches.ndim(),
        });
    }
    let (gh, pad_h) = spec.output_dim(h)?;
    let (gw, pad_w) = spec.output_dim(w)?;
    let f = spec.filter;
    let s = spec.stride;
    let cols = f * f * c;
    if patches.shape().dim(0) != gh * gw || patches.shape().dim(1) != cols {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            lhs: patches.shape().dims().to_vec(),
            rhs: vec![gh * gw, cols],
        });
    }
    let mut acc = vec![0.0f64; h * w * c];
    let mut count = vec![0u32; h * w * c];
    let pd = patches.data();
    for i in 0..gh {
        for j in 0..gw {
            let row_base = (i * gw + j) * cols;
            for f1 in 0..f {
                let yy = (i * s + f1) as isize - pad_h as isize;
                if yy < 0 || yy >= h as isize {
                    continue;
                }
                for f2 in 0..f {
                    let xx = (j * s + f2) as isize - pad_w as isize;
                    if xx < 0 || xx >= w as isize {
                        continue;
                    }
                    for z in 0..c {
                        let dst = ((yy as usize * w) + xx as usize) * c + z;
                        let src = row_base + (f1 * f + f2) * c + z;
                        acc[dst] += pd[src] as f64;
                        count[dst] += 1;
                    }
                }
            }
        }
    }
    let data: Vec<f32> = acc
        .iter()
        .zip(count.iter())
        .map(|(&a, &n)| if n == 0 { 0.0 } else { (a / n as f64) as f32 })
        .collect();
    Tensor::from_vec(data, &[h, w, c])
}

/// Extracts image `index` from a batched `(B, …)` tensor as a rank-(n−1)
/// tensor.
///
/// # Errors
///
/// Returns an error for rank-0 tensors or out-of-range indices.
pub(crate) fn slice_batch(batch: &Tensor, index: usize) -> Result<Tensor> {
    if batch.ndim() == 0 {
        return Err(TensorError::RankMismatch {
            op: "slice_batch",
            expected: 1,
            actual: 0,
        });
    }
    let b = batch.shape().dim(0);
    if index >= b {
        return Err(TensorError::IndexOutOfBounds {
            index: vec![index],
            shape: batch.shape().dims().to_vec(),
        });
    }
    let rest: Vec<usize> = batch.shape().dims()[1..].to_vec();
    let stride: usize = rest.iter().product();
    let data = batch.data()[index * stride..(index + 1) * stride].to_vec();
    Tensor::from_vec(data, &rest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seq_tensor(dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|x| x as f32).collect(), dims).unwrap()
    }

    #[test]
    fn spec_validates() {
        assert!(ConvSpec::new(0, 1, Padding::Valid).is_err());
        assert!(ConvSpec::new(3, 0, Padding::Same).is_err());
        assert!(ConvSpec::new(3, 1, Padding::Valid).is_ok());
    }

    #[test]
    fn output_dims_match_paper_formula() {
        // MNIST net: 28x28 valid 3x3 -> 26, CIFAR: 32x32 same 3x3 -> 32.
        let valid = ConvSpec::new(3, 1, Padding::Valid).unwrap();
        assert_eq!(valid.output_dim(28).unwrap(), (26, 0));
        let same = ConvSpec::new(3, 1, Padding::Same).unwrap();
        assert_eq!(same.output_dim(32).unwrap(), (32, 1));
        // Stride-2 same: ceil(32/2) = 16.
        let stride2 = ConvSpec::new(3, 2, Padding::Same).unwrap();
        assert_eq!(stride2.output_dim(32).unwrap().0, 16);
        // Filter bigger than input under valid padding fails.
        let big = ConvSpec::new(5, 1, Padding::Valid).unwrap();
        assert!(big.output_dim(4).is_err());
    }

    #[test]
    fn im2col_shape_and_content() {
        let input = seq_tensor(&[3, 3, 1]);
        let spec = ConvSpec::new(2, 1, Padding::Valid).unwrap();
        let cols = im2col(&input, &spec).unwrap();
        assert_eq!(cols.shape().dims(), &[4, 4]);
        // First patch is the top-left 2x2 block.
        assert_eq!(cols.row(0).unwrap(), vec![0.0, 1.0, 3.0, 4.0]);
        // Last patch is the bottom-right block.
        assert_eq!(cols.row(3).unwrap(), vec![4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn im2col_same_padding_zero_fills_border() {
        let input = Tensor::ones(&[2, 2, 1]);
        let spec = ConvSpec::new(3, 1, Padding::Same).unwrap();
        let cols = im2col(&input, &spec).unwrap();
        assert_eq!(cols.shape().dims(), &[4, 9]);
        // Top-left output: pad row+col are zero; four ones in lower right.
        let r0 = cols.row(0).unwrap();
        assert_eq!(r0.iter().filter(|&&x| x == 1.0).count(), 4);
        assert_eq!(r0.iter().filter(|&&x| x == 0.0).count(), 5);
    }

    #[test]
    fn conv2d_identity_filter_is_passthrough() {
        // A 1x1 filter with weight 1 reproduces the input.
        let input = seq_tensor(&[1, 4, 4, 1]);
        let filters = Tensor::ones(&[1, 1, 1, 1]);
        let spec = ConvSpec::new(1, 1, Padding::Valid).unwrap();
        let out = conv2d(&input, &filters, &spec).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn conv2d_matches_hand_computation() {
        // 2x2 all-ones filter over a 3x3 ramp = sum of each 2x2 block.
        let input = seq_tensor(&[1, 3, 3, 1]);
        let filters = Tensor::ones(&[2, 2, 1, 1]);
        let spec = ConvSpec::new(2, 1, Padding::Valid).unwrap();
        let out = conv2d(&input, &filters, &spec).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 2, 1]);
        assert_eq!(out.data(), &[8.0, 12.0, 20.0, 24.0]);
    }

    #[test]
    fn conv2d_multi_channel_multi_filter() {
        let input = Tensor::ones(&[1, 3, 3, 2]);
        // Filter 0 sums channel 0 only; filter 1 sums both channels.
        let mut filters = Tensor::zeros(&[2, 2, 2, 2]);
        for f1 in 0..2 {
            for f2 in 0..2 {
                filters.set(&[f1, f2, 0, 0], 1.0).unwrap();
                filters.set(&[f1, f2, 0, 1], 1.0).unwrap();
                filters.set(&[f1, f2, 1, 1], 1.0).unwrap();
            }
        }
        let spec = ConvSpec::new(2, 1, Padding::Valid).unwrap();
        let out = conv2d(&input, &filters, &spec).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 2, 2]);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(out.at(&[0, i, j, 0]).unwrap(), 4.0);
                assert_eq!(out.at(&[0, i, j, 1]).unwrap(), 8.0);
            }
        }
    }

    #[test]
    fn conv2d_rejects_channel_mismatch() {
        let input = Tensor::zeros(&[1, 4, 4, 3]);
        let filters = Tensor::zeros(&[3, 3, 2, 8]);
        let spec = ConvSpec::new(3, 1, Padding::Same).unwrap();
        assert!(conv2d(&input, &filters, &spec).is_err());
    }

    #[test]
    fn col2im_inverts_im2col_exactly_for_full_coverage() {
        let input = seq_tensor(&[4, 4, 2]);
        let spec = ConvSpec::new(3, 1, Padding::Same).unwrap();
        let cols = im2col(&input, &spec).unwrap();
        let back = col2im_accumulate(&cols, 4, 4, 2, &spec).unwrap();
        assert!(back.approx_eq(&input, 1e-6, 1e-6));
    }

    #[test]
    fn col2im_valid_padding_roundtrip() {
        let input = seq_tensor(&[5, 5, 1]);
        let spec = ConvSpec::new(2, 1, Padding::Valid).unwrap();
        let cols = im2col(&input, &spec).unwrap();
        let back = col2im_accumulate(&cols, 5, 5, 1, &spec).unwrap();
        assert!(back.approx_eq(&input, 1e-6, 1e-6));
    }

    #[test]
    fn slice_batch_extracts_images() {
        let batch = seq_tensor(&[2, 2, 2, 1]);
        let img1 = slice_batch(&batch, 1).unwrap();
        assert_eq!(img1.shape().dims(), &[2, 2, 1]);
        assert_eq!(img1.data(), &[4.0, 5.0, 6.0, 7.0]);
        assert!(slice_batch(&batch, 2).is_err());
    }

    proptest! {
        #[test]
        fn im2col_col2im_roundtrip(
            h in 3usize..7, w in 3usize..7, c in 1usize..3,
            f in 1usize..4,
            same in proptest::bool::ANY,
        ) {
            prop_assume!(f <= h && f <= w);
            let padding = if same { Padding::Same } else { Padding::Valid };
            let spec = ConvSpec::new(f, 1, padding).unwrap();
            let n = h * w * c;
            let input = Tensor::from_vec((0..n).map(|x| (x as f32).sin()).collect(), &[h, w, c]).unwrap();
            let cols = im2col(&input, &spec).unwrap();
            let back = col2im_accumulate(&cols, h, w, c, &spec).unwrap();
            // Valid padding with f > 1 does not cover the border, so only
            // compare covered positions: same padding covers everything.
            if same || f == 1 {
                prop_assert!(back.approx_eq(&input, 1e-5, 1e-5));
            } else {
                // Interior must match.
                for y in (f - 1)..(h - f + 1) {
                    for x in (f - 1)..(w - f + 1) {
                        for z in 0..c {
                            let a = input.at(&[y, x, z]).unwrap();
                            let b = back.at(&[y, x, z]).unwrap();
                            prop_assert!((a - b).abs() < 1e-5);
                        }
                    }
                }
            }
        }

        #[test]
        fn conv2d_linear_in_input(
            vals in proptest::collection::vec(-2.0f32..2.0, 32),
        ) {
            let input = Tensor::from_vec(vals[0..16].to_vec(), &[1, 4, 4, 1]).unwrap();
            let filters = Tensor::from_vec(vals[16..20].to_vec(), &[2, 2, 1, 1]).unwrap();
            let spec = ConvSpec::new(2, 1, Padding::Valid).unwrap();
            let out1 = conv2d(&input, &filters, &spec).unwrap();
            let out2 = conv2d(&input.scale(2.0), &filters, &spec).unwrap();
            prop_assert!(out2.approx_eq(&out1.scale(2.0), 1e-4, 1e-4));
        }
    }
}
