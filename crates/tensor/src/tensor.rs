use crate::{Result, Shape, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major, owned `f32` tensor.
///
/// `Tensor` is the unit of data flowing through the CNN substrate and the
/// object MILR checkpoints, regenerates and solves for. It is deliberately
/// simple: contiguous storage plus a [`Shape`]. All layer mathematics in
/// the reproduction (matmul, im2col convolution, pooling) is built on it.
///
/// ```
/// use milr_tensor::Tensor;
///
/// let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 3 + idx[1]) as f32);
/// assert_eq!(t.at(&[1, 2])?, 5.0);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// # Ok::<(), milr_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.numel()];
        Tensor { shape, data }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.numel()];
        Tensor { shape, data }
    }

    /// Creates a 2-D identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` differs
    /// from the element count implied by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor by evaluating `f` at every index, in row-major
    /// order.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        for flat in 0..n {
            let idx = shape
                .unflatten_index(flat)
                .expect("flat index in range by construction");
            data.push(f(&idx));
        }
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Rank (number of dimensions).
    pub fn ndim(&self) -> usize {
        self.shape.ndim()
    }

    /// Immutable view of the underlying row-major storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    ///
    /// Fault injectors use this to flip bits in place, exactly as a soft
    /// memory error would corrupt the weight buffer of a deployed network.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for a bad index.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        self.shape
            .flatten_index(index)
            .map(|flat| self.data[flat])
            .ok_or_else(|| TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.dims().to_vec(),
            })
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for a bad index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        match self.shape.flatten_index(index) {
            Some(flat) => {
                self.data[flat] = value;
                Ok(())
            }
            None => Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.dims().to_vec(),
            }),
        }
    }

    /// Returns a copy with a new shape holding the same elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the element counts
    /// differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.numel() != self.data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.numel(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Reshapes in place without copying the data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the element counts
    /// differ.
    pub fn reshape_in_place(&mut self, dims: &[usize]) -> Result<()> {
        let shape = Shape::new(dims);
        if shape.numel() != self.data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.numel(),
                actual: self.data.len(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "zip_map",
                lhs: self.shape.dims().to_vec(),
                rhs: other.shape.dims().to_vec(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference (`self - other`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Sum of all elements, accumulated in `f64` for stability.
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Maximum absolute element (0.0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Matrix product with another rank-2 tensor; see
    /// [`matmul`](crate::matmul).
    ///
    /// # Errors
    ///
    /// Returns an error when either operand is not rank 2 or the inner
    /// dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Result<Self> {
        crate::matmul(self, other)
    }

    /// 2-D transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is rank 2.
    pub fn transpose(&self) -> Result<Self> {
        if self.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose",
                expected: 2,
                actual: self.ndim(),
            });
        }
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Extracts row `i` of a rank-2 tensor as a flat vector.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or out-of-bounds rows.
    pub fn row(&self, i: usize) -> Result<Vec<f32>> {
        if self.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                op: "row",
                expected: 2,
                actual: self.ndim(),
            });
        }
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        if i >= r {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![i],
                shape: self.shape.dims().to_vec(),
            });
        }
        Ok(self.data[i * c..(i + 1) * c].to_vec())
    }

    /// Extracts column `j` of a rank-2 tensor as a flat vector.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or out-of-bounds columns.
    pub fn col(&self, j: usize) -> Result<Vec<f32>> {
        if self.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                op: "col",
                expected: 2,
                actual: self.ndim(),
            });
        }
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        if j >= c {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![j],
                shape: self.shape.dims().to_vec(),
            });
        }
        Ok((0..r).map(|i| self.data[i * c + j]).collect())
    }

    /// Concatenates rank-2 tensors along rows (stacking vertically).
    ///
    /// # Errors
    ///
    /// Returns an error if any operand is not rank 2 or column counts
    /// differ.
    pub fn vstack(tensors: &[&Tensor]) -> Result<Self> {
        if tensors.is_empty() {
            return Ok(Tensor::zeros(&[0, 0]));
        }
        let cols = tensors[0].shape.dim(1);
        let mut rows = 0usize;
        for t in tensors {
            if t.ndim() != 2 {
                return Err(TensorError::RankMismatch {
                    op: "vstack",
                    expected: 2,
                    actual: t.ndim(),
                });
            }
            if t.shape.dim(1) != cols {
                return Err(TensorError::ShapeMismatch {
                    op: "vstack",
                    lhs: tensors[0].shape.dims().to_vec(),
                    rhs: t.shape.dims().to_vec(),
                });
            }
            rows += t.shape.dim(0);
        }
        let mut data = Vec::with_capacity(rows * cols);
        for t in tensors {
            data.extend_from_slice(&t.data);
        }
        Ok(Tensor {
            shape: Shape::new(&[rows, cols]),
            data,
        })
    }

    /// Concatenates rank-2 tensors along columns (stacking horizontally).
    ///
    /// # Errors
    ///
    /// Returns an error if any operand is not rank 2 or row counts differ.
    pub fn hstack(tensors: &[&Tensor]) -> Result<Self> {
        if tensors.is_empty() {
            return Ok(Tensor::zeros(&[0, 0]));
        }
        let rows = tensors[0].shape.dim(0);
        let mut cols = 0usize;
        for t in tensors {
            if t.ndim() != 2 {
                return Err(TensorError::RankMismatch {
                    op: "hstack",
                    expected: 2,
                    actual: t.ndim(),
                });
            }
            if t.shape.dim(0) != rows {
                return Err(TensorError::ShapeMismatch {
                    op: "hstack",
                    lhs: tensors[0].shape.dims().to_vec(),
                    rhs: t.shape.dims().to_vec(),
                });
            }
            cols += t.shape.dim(1);
        }
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for t in tensors {
                let c = t.shape.dim(1);
                data.extend_from_slice(&t.data[i * c..(i + 1) * c]);
            }
        }
        Ok(Tensor {
            shape: Shape::new(&[rows, cols]),
            data,
        })
    }

    /// Copies the elements into an `f64` vector (for `milr-linalg`
    /// solves).
    pub fn to_f64_vec(&self) -> Vec<f64> {
        self.data.iter().map(|&x| x as f64).collect()
    }

    /// Builds a tensor from `f64` data, rounding each element to `f32`.
    ///
    /// MILR recovers parameters by solving linear systems in `f64` and
    /// writing the rounded results back over the corrupted `f32` weights.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] on length mismatch.
    pub fn from_f64_vec(data: &[f64], dims: &[usize]) -> Result<Self> {
        Tensor::from_vec(data.iter().map(|&x| x as f32).collect(), dims)
    }

    /// True when every element of `self` and `other` is close under
    /// `|a - b| <= atol + rtol * |b|`.
    ///
    /// MILR's detection phase compares recomputed layer outputs against
    /// partial checkpoints with exactly this criterion; the tolerance
    /// absorbs float-associativity noise (paper §V-A, *Limitations*).
    pub fn approx_eq(&self, other: &Tensor, rtol: f32, atol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= atol + rtol * b.abs())
    }

    /// Largest elementwise absolute difference; `None` when shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Option<f32> {
        if self.shape != other.shape {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(other.data.iter())
                .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs())),
        )
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        const PREVIEW: usize = 8;
        for (i, x) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_produce_expected_values() {
        assert!(Tensor::zeros(&[2, 2]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[3]).data().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[2], 7.5).data().iter().all(|&x| x == 7.5));
        let eye = Tensor::eye(3);
        assert_eq!(eye.at(&[0, 0]).unwrap(), 1.0);
        assert_eq!(eye.at(&[0, 1]).unwrap(), 0.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        let err = Tensor::from_vec(vec![1.0; 5], &[2, 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::ShapeDataMismatch {
                expected: 6,
                actual: 5
            }
        );
    }

    #[test]
    fn indexing_roundtrips() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 42.0).unwrap();
        assert_eq!(t.at(&[1, 2, 3]).unwrap(), 42.0);
        assert!(t.at(&[2, 0, 0]).is_err());
        assert!(t.set(&[0, 3, 0], 1.0).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        let r = t.reshape(&[2, 6]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[5, 5]).is_err());
    }

    #[test]
    fn transpose_is_involution() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let tt = t.transpose().unwrap().transpose().unwrap();
        assert_eq!(t, tt);
        assert_eq!(t.transpose().unwrap().at(&[2, 1]).unwrap(), 5.0);
    }

    #[test]
    fn row_col_extraction() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        assert_eq!(t.row(1).unwrap(), vec![3.0, 4.0, 5.0]);
        assert_eq!(t.col(2).unwrap(), vec![2.0, 5.0]);
        assert!(t.row(2).is_err());
        assert!(t.col(3).is_err());
    }

    #[test]
    fn stacking_works() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[1, 2]).unwrap();
        let v = Tensor::vstack(&[&a, &b]).unwrap();
        assert_eq!(v.shape().dims(), &[2, 2]);
        assert_eq!(v.data(), &[1.0, 2.0, 3.0, 4.0]);
        let h = Tensor::hstack(&[&a, &b]).unwrap();
        assert_eq!(h.shape().dims(), &[1, 4]);
        assert_eq!(h.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn stacking_validates_shapes() {
        let a = Tensor::zeros(&[1, 2]);
        let b = Tensor::zeros(&[1, 3]);
        assert!(Tensor::vstack(&[&a, &b]).is_err());
        let c = Tensor::zeros(&[2, 2]);
        assert!(Tensor::hstack(&[&a, &c]).is_err());
    }

    #[test]
    fn approx_eq_respects_tolerances() {
        let a = Tensor::from_vec(vec![1.0, 100.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0001, 100.01], &[2]).unwrap();
        assert!(a.approx_eq(&b, 1e-3, 1e-3));
        assert!(!a.approx_eq(&b, 1e-6, 1e-6));
        let c = Tensor::zeros(&[3]);
        assert!(!a.approx_eq(&c, 1.0, 1.0));
    }

    #[test]
    fn f64_roundtrip() {
        let t = Tensor::from_vec(vec![1.5, -2.25, 3.125], &[3]).unwrap();
        let v = t.to_f64_vec();
        let back = Tensor::from_f64_vec(&v, &[3]).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn sum_accumulates_in_f64() {
        let t = Tensor::full(&[1000], 0.1);
        assert!((t.sum() - 100.0).abs() < 1e-3);
    }

    #[test]
    fn display_previews_elements() {
        let t = Tensor::from_vec((0..20).map(|x| x as f32).collect(), &[20]).unwrap();
        let s = t.to_string();
        assert!(s.contains('…'));
        assert!(s.contains("(20)"));
    }

    proptest! {
        #[test]
        fn add_sub_roundtrip(v in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
            let n = v.len();
            let a = Tensor::from_vec(v.clone(), &[n]).unwrap();
            let b = Tensor::from_vec(v.iter().map(|x| x * 0.5).collect(), &[n]).unwrap();
            let back = a.add(&b).unwrap().sub(&b).unwrap();
            prop_assert!(back.approx_eq(&a, 1e-5, 1e-5));
        }

        #[test]
        fn scale_distributes(v in proptest::collection::vec(-10.0f32..10.0, 1..32), s in -4.0f32..4.0) {
            let n = v.len();
            let a = Tensor::from_vec(v, &[n]).unwrap();
            let lhs = a.scale(s).add(&a.scale(s)).unwrap();
            let rhs = a.scale(2.0 * s);
            prop_assert!(lhs.approx_eq(&rhs, 1e-4, 1e-4));
        }
    }
}
