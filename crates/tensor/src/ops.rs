use crate::{Result, Tensor, TensorError};

/// Matrix product of two rank-2 tensors: `(M,N) × (N,P) → (M,P)`.
///
/// This is the dense-layer forward pass of the paper (§IV-A): `A` is the
/// input, `B` the parameters, the result the output. Accumulation is done
/// in `f64` so that the forward pass MILR replays during detection and the
/// init-time pass that produced the checkpoints agree bit-for-bit and are
/// as close as possible to the algebraic value the recovery solver
/// reconstructs.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrices and
/// [`TensorError::ShapeMismatch`] when inner dimensions differ.
///
/// ```
/// use milr_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
/// let c = matmul(&a, &b)?;
/// assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok::<(), milr_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            op: "matmul",
            expected: 2,
            actual: a.ndim(),
        });
    }
    if b.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            op: "matmul",
            expected: 2,
            actual: b.ndim(),
        });
    }
    let (m, n) = (a.shape().dim(0), a.shape().dim(1));
    let (n2, p) = (b.shape().dim(0), b.shape().dim(1));
    if n != n2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * p];
    // Cache-friendly ikj loop with f64 accumulator rows.
    let mut acc = vec![0.0f64; p];
    for i in 0..m {
        for x in acc.iter_mut() {
            *x = 0.0;
        }
        for k in 0..n {
            let aik = ad[i * n + k] as f64;
            if aik == 0.0 {
                continue;
            }
            let brow = &bd[k * p..(k + 1) * p];
            for (j, &bkj) in brow.iter().enumerate() {
                acc[j] += aik * bkj as f64;
            }
        }
        for j in 0..p {
            out[i * p + j] = acc[j] as f32;
        }
    }
    Tensor::from_vec(out, &[m, p])
}

/// Index of the largest element in a flat slice; ties resolve to the
/// first occurrence. Used to turn network logits into class predictions.
///
/// Returns `None` for an empty slice.
///
/// ```
/// use milr_tensor::argmax;
///
/// assert_eq!(argmax(&[0.1, 0.7, 0.2]), Some(1));
/// assert_eq!(argmax(&[]), None);
/// ```
pub fn argmax(values: &[f32]) -> Option<usize> {
    if values.is_empty() {
        return None;
    }
    let mut best = 0usize;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v > values[best] {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let i3 = Tensor::eye(3);
        assert_eq!(matmul(&a, &i3).unwrap(), a);
        let i2 = Tensor::eye(2);
        assert_eq!(matmul(&i2, &a).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::ShapeMismatch { .. })
        ));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(
            matmul(&v, &a),
            Err(TensorError::RankMismatch { .. })
        ));
        assert!(matches!(
            matmul(&a, &v),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn argmax_basic() {
        assert_eq!(argmax(&[3.0, 1.0, 2.0]), Some(0));
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[f32::NEG_INFINITY, -1.0]), Some(1));
    }

    proptest! {
        #[test]
        fn matmul_associative_with_identity(
            rows in 1usize..5, cols in 1usize..5,
            seed in proptest::collection::vec(-10.0f32..10.0, 25)
        ) {
            let data: Vec<f32> = seed.iter().cycle().take(rows * cols).cloned().collect();
            let a = Tensor::from_vec(data, &[rows, cols]).unwrap();
            let prod = matmul(&a, &Tensor::eye(cols)).unwrap();
            prop_assert_eq!(prod, a);
        }

        #[test]
        fn matmul_distributes_over_addition(
            vals in proptest::collection::vec(-5.0f32..5.0, 18)
        ) {
            let a = Tensor::from_vec(vals[0..6].to_vec(), &[2, 3]).unwrap();
            let b = Tensor::from_vec(vals[6..12].to_vec(), &[3, 2]).unwrap();
            let c = Tensor::from_vec(vals[12..18].to_vec(), &[3, 2]).unwrap();
            let lhs = matmul(&a, &b.add(&c).unwrap()).unwrap();
            let rhs = matmul(&a, &b).unwrap().add(&matmul(&a, &c).unwrap()).unwrap();
            prop_assert!(lhs.approx_eq(&rhs, 1e-4, 1e-4));
        }
    }
}
