//! Oracle test: the im2col-based `conv2d` against a literal
//! transcription of the paper's Equation 4,
//! `Out[i,j,k] = Σ_f1 Σ_f2 Σ_z Filter[f1,f2,z,k] · In[f1+i, f2+j, z]`
//! (extended with stride and padding).

use milr_tensor::{conv2d, ConvSpec, Padding, Tensor, TensorRng};

/// Direct nested-loop convolution, numerically independent of im2col.
fn conv2d_reference(input: &Tensor, filters: &Tensor, spec: &ConvSpec) -> Tensor {
    let (b, h, w, c) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    );
    let (f, _, _, y) = (
        filters.shape().dim(0),
        filters.shape().dim(1),
        filters.shape().dim(2),
        filters.shape().dim(3),
    );
    let (gh, pad_h) = spec.output_dim(h).unwrap();
    let (gw, pad_w) = spec.output_dim(w).unwrap();
    let mut out = Tensor::zeros(&[b, gh, gw, y]);
    for img in 0..b {
        for i in 0..gh {
            for j in 0..gw {
                for k in 0..y {
                    let mut acc = 0.0f64;
                    for f1 in 0..f {
                        for f2 in 0..f {
                            let yy = (i * spec.stride + f1) as isize - pad_h as isize;
                            let xx = (j * spec.stride + f2) as isize - pad_w as isize;
                            if yy < 0 || xx < 0 || yy >= h as isize || xx >= w as isize {
                                continue;
                            }
                            for z in 0..c {
                                let iv =
                                    input.at(&[img, yy as usize, xx as usize, z]).unwrap() as f64;
                                let fv = filters.at(&[f1, f2, z, k]).unwrap() as f64;
                                acc += iv * fv;
                            }
                        }
                    }
                    out.set(&[img, i, j, k], acc as f32).unwrap();
                }
            }
        }
    }
    out
}

#[test]
fn im2col_conv_matches_equation_4_reference() {
    let mut rng = TensorRng::new(0xC0DE);
    for (h, c, f, y, stride, padding) in [
        (6usize, 1usize, 3usize, 4usize, 1usize, Padding::Valid),
        (8, 3, 3, 2, 1, Padding::Same),
        (9, 2, 2, 5, 2, Padding::Valid),
        (7, 4, 5, 3, 1, Padding::Same),
        (5, 1, 1, 1, 1, Padding::Valid),
        (10, 2, 3, 6, 3, Padding::Same),
    ] {
        let spec = ConvSpec::new(f, stride, padding).unwrap();
        let input = rng.uniform_tensor(&[2, h, h, c]);
        let filters = rng.uniform_tensor(&[f, f, c, y]);
        let fast = conv2d(&input, &filters, &spec).unwrap();
        let slow = conv2d_reference(&input, &filters, &spec);
        assert_eq!(
            fast.shape(),
            slow.shape(),
            "{h} {c} {f} {y} {stride} {padding:?}"
        );
        assert!(
            fast.approx_eq(&slow, 1e-5, 1e-6),
            "mismatch for h={h} c={c} f={f} y={y} s={stride} {padding:?}: {:?}",
            fast.max_abs_diff(&slow)
        );
    }
}

#[test]
fn conv_linearity_in_filters() {
    // conv(x, A + B) == conv(x, A) + conv(x, B): the property MILR's
    // dummy-filter augmentation relies on.
    let mut rng = TensorRng::new(0xFEED);
    let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
    let x = rng.uniform_tensor(&[1, 7, 7, 2]);
    let a = rng.uniform_tensor(&[3, 3, 2, 4]);
    let b = rng.uniform_tensor(&[3, 3, 2, 4]);
    let lhs = conv2d(&x, &a.add(&b).unwrap(), &spec).unwrap();
    let rhs = conv2d(&x, &a, &spec)
        .unwrap()
        .add(&conv2d(&x, &b, &spec).unwrap())
        .unwrap();
    assert!(lhs.approx_eq(&rhs, 1e-4, 1e-5));
}
