//! [`WeightSubstrate`] adaptation of the AES-XTS encrypted memory from
//! `milr_xts`: the encrypted-VM substrate whose raw space is the
//! ciphertext, so every raw-bit fault garbles a whole 16-byte block
//! (four weights) of plaintext.

use crate::{RawGeometry, ScrubSummary, SubstrateError, WeightSubstrate};
use milr_xts::{EncryptedMemory, BLOCK_BYTES};

/// One 128-bit cipher block per row: a ciphertext burst that stays
/// inside a row garbles exactly one block of plaintext.
const XTS_GEOMETRY: RawGeometry = RawGeometry {
    word_bits: BLOCK_BYTES * 8,
    words_per_row: 1,
};

impl WeightSubstrate for EncryptedMemory {
    fn label(&self) -> &'static str {
        "AES-XTS DRAM"
    }

    fn len(&self) -> usize {
        EncryptedMemory::len(self)
    }

    fn raw_bits(&self) -> usize {
        self.ciphertext_bits()
    }

    fn raw_word_of_bit(&self, bit: usize) -> usize {
        // The "word" a ciphertext fault touches is the 16-byte cipher
        // block: that is the blast-radius granularity in plaintext.
        bit / 8 / BLOCK_BYTES
    }

    fn raw_geometry(&self) -> RawGeometry {
        XTS_GEOMETRY
    }

    fn raw_bit(&self, bit: usize) -> bool {
        assert!(bit < self.ciphertext_bits(), "raw bit {bit} out of range");
        (self.ciphertext()[bit / 8] >> (bit % 8)) & 1 == 1
    }

    fn flip_raw_bit(&mut self, bit: usize) {
        self.flip_ciphertext_bit(bit);
    }

    fn read_weights(&self) -> Vec<f32> {
        // Cannot fail: the stored ciphertext is always a whole number of
        // blocks by construction.
        self.decrypt_all()
            .expect("stored ciphertext is block-aligned")
    }

    fn write_weights(&mut self, weights: &[f32]) -> Result<(), SubstrateError> {
        if weights.len() != EncryptedMemory::len(self) {
            return Err(SubstrateError::LengthMismatch {
                expected: EncryptedMemory::len(self),
                got: weights.len(),
            });
        }
        self.overwrite(weights)
            .map_err(|e| SubstrateError::Backend(e.to_string()))
    }

    fn write_weights_sparse(&mut self, updates: &[(usize, f32)]) -> Result<(), SubstrateError> {
        let len = EncryptedMemory::len(self);
        for &(idx, _) in updates {
            if idx >= len {
                return Err(SubstrateError::LengthMismatch {
                    expected: len,
                    got: idx + 1,
                });
            }
        }
        self.overwrite_sparse(updates)
            .map_err(|e| SubstrateError::Backend(e.to_string()))
    }

    fn scrub(&mut self) -> ScrubSummary {
        // Bare ciphertext carries no code layer: nothing to repair.
        ScrubSummary::default()
    }

    fn export_raw(&self) -> Vec<u8> {
        self.ciphertext().to_vec()
    }

    fn import_raw(&mut self, raw: &[u8]) -> Result<(), SubstrateError> {
        self.set_ciphertext(raw)
            .map_err(|e| SubstrateError::Backend(e.to_string()))
    }

    fn storage_overhead(&self) -> usize {
        // Padding to a whole number of cipher blocks.
        self.ciphertext().len() - EncryptedMemory::len(self) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_xts::XtsCipher;

    fn cipher() -> XtsCipher {
        XtsCipher::new(&[0xA5; 16], &[0x5A; 16])
    }

    fn weights(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32 * 0.5 - 8.0).collect()
    }

    #[test]
    fn roundtrip_and_padding_overhead() {
        let w = weights(5); // pads to 2 blocks = 32 bytes
        let mem = EncryptedMemory::encrypt(&w, cipher()).unwrap();
        assert_eq!(WeightSubstrate::len(&mem), 5);
        assert_eq!(mem.read_weights(), w);
        assert_eq!(WeightSubstrate::storage_overhead(&mem), 32 - 20);
    }

    #[test]
    fn raw_flip_garbles_one_block_and_scrub_cannot_help() {
        let w = weights(12);
        let mut mem = EncryptedMemory::encrypt(&w, cipher()).unwrap();
        let bit = 17 * 8 + 3; // block 1
        mem.flip_raw_bit(bit);
        assert_eq!(mem.raw_word_of_bit(bit), 1);
        assert!(WeightSubstrate::scrub(&mut mem).is_clean());
        let seen = mem.read_weights();
        assert_eq!(&seen[0..4], &w[0..4]);
        assert_eq!(&seen[8..12], &w[8..12]);
        assert_ne!(&seen[4..8], &w[4..8]);
    }

    #[test]
    fn write_back_reencrypts() {
        let w = weights(8);
        let mut mem = EncryptedMemory::encrypt(&w, cipher()).unwrap();
        mem.flip_raw_bit(0);
        WeightSubstrate::write_weights(&mut mem, &w).unwrap();
        assert_eq!(mem.read_weights(), w);
        assert!(matches!(
            WeightSubstrate::write_weights(&mut mem, &weights(9)),
            Err(SubstrateError::LengthMismatch { .. })
        ));
    }
}
