//! # milr-substrate
//!
//! The unified **weight substrate** abstraction of the MILR
//! reproduction: one trait, [`WeightSubstrate`], over every way the
//! paper stores CNN parameters in (error-prone) memory —
//!
//! * [`PlainMemory`] — raw `f32` words in DRAM, no protection;
//! * [`SecdedMemory`] — one (39,32) SECDED code word per parameter,
//!   the ECC baseline (adapted from `milr_ecc::memory`);
//! * [`EncryptedMemory`] — AES-XTS ciphertext, the encrypted-VM model
//!   (adapted from `milr_xts::memory`);
//! * [`XtsSecdedMemory`] — SECDED over the *ciphertext* words: ECC
//!   DRAM under a memory-encryption engine, the paper's "ECC cannot
//!   fix decrypted garble" configuration (a single corrected ciphertext
//!   bit is harmless, but any uncorrectable codeword decrypts to a
//!   whole garbled 16-byte block of weights).
//!
//! Concurrent access — an inference plane reading weights while a
//! scrubber daemon repairs them in place — goes through
//! [`SharedSubstrate`], a sharded `Arc`/`RwLock` wrapper over any
//! substrate whose per-shard reads are atomic with respect to writes
//! and scrubs.
//!
//! Fault injectors flip bits in each substrate's **raw representation**
//! ([`WeightSubstrate::flip_raw_bit`] over [`WeightSubstrate::raw_bits`]),
//! so one generic injection loop expresses plaintext-space DRAM errors,
//! ECC-word errors, and ciphertext-space errors alike; the benchmark
//! harness composes substrates with recovery arms through
//! [`SubstrateKind`] without per-arm code paths.
//!
//! ```
//! use milr_substrate::{SubstrateKind, WeightSubstrate};
//!
//! let weights = vec![0.5f32, -1.25, 3.0, 0.0];
//! for kind in SubstrateKind::ALL {
//!     let mut mem = kind.store(&weights);
//!     assert_eq!(mem.read_weights(), weights);
//!     mem.flip_raw_bit(7);
//!     mem.scrub();
//!     let seen = mem.read_weights();
//!     assert_eq!(seen.len(), weights.len());
//! }
//! ```

#![deny(missing_docs)]

mod encrypted;
mod file;
mod kind;
mod plain;
mod secded;
mod shared;
mod xts_secded;

pub use file::{DirectCommitter, FileSubstrate, PageCommitter, PageFile, PagePatch, StdFile};
pub use kind::SubstrateKind;
/// SECDED-per-word substrate, re-exported from `milr_ecc` with its
/// [`WeightSubstrate`] adaptation defined in this crate.
pub use milr_ecc::SecdedMemory;
/// AES-XTS ciphertext substrate, re-exported from `milr_xts` with its
/// [`WeightSubstrate`] adaptation defined in this crate.
pub use milr_xts::EncryptedMemory;
pub use plain::PlainMemory;
pub use shared::SharedSubstrate;
pub use xts_secded::XtsSecdedMemory;

/// Error from a substrate write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubstrateError {
    /// The written buffer's length differs from the stored length.
    LengthMismatch {
        /// Stored weight count.
        expected: usize,
        /// Written weight count.
        got: usize,
    },
    /// The backing cipher or code rejected the operation.
    Backend(String),
}

impl std::fmt::Display for SubstrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubstrateError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "substrate holds {expected} weights, write of {got} rejected"
                )
            }
            SubstrateError::Backend(msg) => write!(f, "substrate backend error: {msg}"),
        }
    }
}

impl std::error::Error for SubstrateError {}

/// Statistics from one scrub pass over a substrate.
///
/// Substrates without a code layer (plain DRAM, bare ciphertext) report
/// zeros: their scrub is a no-op by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrubSummary {
    /// Words whose single-bit error was corrected in place.
    pub corrected: usize,
    /// Words with a detected-but-uncorrectable (multi-bit) error.
    pub uncorrectable: usize,
}

impl ScrubSummary {
    /// True when the pass found nothing to fix or report.
    pub fn is_clean(&self) -> bool {
        self.corrected == 0 && self.uncorrectable == 0
    }

    /// Folds another pass's counts into this summary (shard-by-shard
    /// and layer-by-layer sweeps accumulate through this).
    pub fn absorb(&mut self, other: &ScrubSummary) {
        self.corrected += other.corrected;
        self.uncorrectable += other.uncorrectable;
    }
}

/// A buffer of CNN weights held in some memory substrate.
///
/// The trait splits the world into **plaintext space** (what
/// [`read_weights`](WeightSubstrate::read_weights) returns, what
/// inference and MILR observe) and **raw space** (the substrate's
/// physical bit image: data words, ECC code words, or ciphertext).
/// Faults happen in raw space; protection and recovery reason about
/// plaintext space. Implementations define the mapping.
pub trait WeightSubstrate: Send + Sync {
    /// Short human-readable substrate name (report headers).
    fn label(&self) -> &'static str;

    /// Number of weights stored.
    fn len(&self) -> usize;

    /// True when no weights are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bits of the raw representation — the space over which
    /// RBER faults are drawn.
    fn raw_bits(&self) -> usize;

    /// Index of the raw word (data word, code word, or cipher block)
    /// containing the given raw bit, for affected-word accounting.
    ///
    /// # Panics
    ///
    /// May panic when `bit >= self.raw_bits()`.
    fn raw_word_of_bit(&self, bit: usize) -> usize;

    /// Flips one bit of the raw representation.
    ///
    /// # Panics
    ///
    /// Panics when `bit >= self.raw_bits()`.
    fn flip_raw_bit(&mut self, bit: usize);

    /// Decodes the buffer to plaintext weights, best-effort, exactly as
    /// an inference read would observe them. Does not modify storage.
    fn read_weights(&self) -> Vec<f32>;

    /// Decodes the buffer to plaintext weights directly into `out`,
    /// avoiding the intermediate `Vec` of
    /// [`read_weights`](WeightSubstrate::read_weights) where the
    /// substrate can (plain storage is a straight `copy_from_slice`).
    /// The default falls back to decoding into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics when `out.len()` differs from
    /// [`len`](WeightSubstrate::len).
    fn read_weights_into(&self, out: &mut [f32]) {
        let decoded = self.read_weights();
        assert_eq!(
            out.len(),
            decoded.len(),
            "read_weights_into buffer of {} cannot hold {} weights",
            out.len(),
            decoded.len()
        );
        out.copy_from_slice(&decoded);
    }

    /// Replaces the stored weights (re-encoding / re-encrypting as the
    /// substrate requires) — the write-back path of MILR recovery.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::LengthMismatch`] when `weights.len()` differs
    /// from [`len`](WeightSubstrate::len).
    fn write_weights(&mut self, weights: &[f32]) -> Result<(), SubstrateError>;

    /// Runs one error-scrub pass, repairing whatever the substrate's
    /// code layer can repair in place, and reports statistics. A no-op
    /// returning [`ScrubSummary::default`] for code-free substrates.
    fn scrub(&mut self) -> ScrubSummary;

    /// Extra storage the substrate needs beyond the 4 bytes per weight
    /// of the plaintext (check bits, padding) — the per-substrate
    /// column of the paper's storage tables, in bytes.
    fn storage_overhead(&self) -> usize;

    /// Serializes the substrate's **raw representation** to bytes — the
    /// persistence image. Raw state round-trips verbatim (including any
    /// in-flight error state), so a store can snapshot and restore a
    /// substrate without decoding it; see
    /// [`SubstrateKind::restore`](crate::SubstrateKind::restore) for the
    /// inverse. The image length for a given kind and weight count is
    /// fixed ([`SubstrateKind::raw_image_bytes`](crate::SubstrateKind::raw_image_bytes)).
    fn export_raw(&self) -> Vec<u8>;

    /// Replaces the substrate's **raw representation** from an image —
    /// the inverse of [`export_raw`](WeightSubstrate::export_raw), in
    /// place, without decoding to plaintext. This is the peer-repair
    /// write path: a damaged replica overwrites its raw pages with a
    /// healthy peer's certified image, bit for bit, superseding
    /// whatever (possibly corrupt, possibly dirty-cached) state the
    /// substrate held. File-backed substrates commit the imported pages
    /// through their [`PageCommitter`](crate::PageCommitter).
    ///
    /// # Errors
    ///
    /// [`SubstrateError::Backend`] when `raw` is not a valid image for
    /// this substrate's kind and weight count (wrong length), or the
    /// backing store rejects the write.
    fn import_raw(&mut self, raw: &[u8]) -> Result<(), SubstrateError>;

    /// Forces any buffered state down to the substrate's backing store.
    /// A no-op for purely in-memory substrates; the file-backed
    /// substrate commits its dirty pages through its
    /// [`PageCommitter`](crate::PageCommitter).
    ///
    /// # Errors
    ///
    /// [`SubstrateError::Backend`] when the backing store rejects the
    /// write.
    fn flush(&mut self) -> Result<(), SubstrateError> {
        Ok(())
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn scrub_summary_clean() {
        assert!(ScrubSummary::default().is_clean());
        assert!(!ScrubSummary {
            corrected: 1,
            uncorrectable: 0
        }
        .is_clean());
    }

    #[test]
    fn substrate_error_displays() {
        let e = SubstrateError::LengthMismatch {
            expected: 4,
            got: 5,
        };
        assert!(e.to_string().contains("4"));
        assert!(SubstrateError::Backend("boom".into())
            .to_string()
            .contains("boom"));
    }
}
