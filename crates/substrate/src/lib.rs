//! # milr-substrate
//!
//! The unified **weight substrate** abstraction of the MILR
//! reproduction: one trait, [`WeightSubstrate`], over every way the
//! paper stores CNN parameters in (error-prone) memory —
//!
//! * [`PlainMemory`] — raw `f32` words in DRAM, no protection;
//! * [`SecdedMemory`] — one (39,32) SECDED code word per parameter,
//!   the ECC baseline (adapted from `milr_ecc::memory`);
//! * [`EncryptedMemory`] — AES-XTS ciphertext, the encrypted-VM model
//!   (adapted from `milr_xts::memory`);
//! * [`XtsSecdedMemory`] — SECDED over the *ciphertext* words: ECC
//!   DRAM under a memory-encryption engine, the paper's "ECC cannot
//!   fix decrypted garble" configuration (a single corrected ciphertext
//!   bit is harmless, but any uncorrectable codeword decrypts to a
//!   whole garbled 16-byte block of weights).
//!
//! Concurrent access — an inference plane reading weights while a
//! scrubber daemon repairs them in place — goes through
//! [`SharedSubstrate`], a sharded `Arc`/`RwLock` wrapper over any
//! substrate whose per-shard reads are atomic with respect to writes
//! and scrubs.
//!
//! Fault injectors flip bits in each substrate's **raw representation**
//! ([`WeightSubstrate::flip_raw_bit`] over [`WeightSubstrate::raw_bits`]),
//! so one generic injection loop expresses plaintext-space DRAM errors,
//! ECC-word errors, and ciphertext-space errors alike; the benchmark
//! harness composes substrates with recovery arms through
//! [`SubstrateKind`] without per-arm code paths.
//!
//! ```
//! use milr_substrate::{SubstrateKind, WeightSubstrate};
//!
//! let weights = vec![0.5f32, -1.25, 3.0, 0.0];
//! for kind in SubstrateKind::ALL {
//!     let mut mem = kind.store(&weights);
//!     assert_eq!(mem.read_weights(), weights);
//!     mem.flip_raw_bit(7);
//!     mem.scrub();
//!     let seen = mem.read_weights();
//!     assert_eq!(seen.len(), weights.len());
//! }
//! ```

#![deny(missing_docs)]

mod encrypted;
mod file;
mod kind;
mod plain;
mod quant;
mod secded;
mod shared;
mod xts_secded;

pub use file::{DirectCommitter, FileSubstrate, PageCommitter, PageFile, PagePatch, StdFile};
pub use kind::SubstrateKind;
/// SECDED-per-word substrate, re-exported from `milr_ecc` with its
/// [`WeightSubstrate`] adaptation defined in this crate.
pub use milr_ecc::SecdedMemory;
/// AES-XTS ciphertext substrate, re-exported from `milr_xts` with its
/// [`WeightSubstrate`] adaptation defined in this crate.
pub use milr_xts::EncryptedMemory;
pub use plain::PlainMemory;
pub use quant::{QuantFormat, QuantMemory, QuantSecdedMemory};
pub use shared::SharedSubstrate;
pub use xts_secded::XtsSecdedMemory;

/// Error from a substrate write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubstrateError {
    /// The written buffer's length differs from the stored length.
    LengthMismatch {
        /// Stored weight count.
        expected: usize,
        /// Written weight count.
        got: usize,
    },
    /// The backing cipher or code rejected the operation.
    Backend(String),
}

impl std::fmt::Display for SubstrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubstrateError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "substrate holds {expected} weights, write of {got} rejected"
                )
            }
            SubstrateError::Backend(msg) => write!(f, "substrate backend error: {msg}"),
        }
    }
}

impl std::error::Error for SubstrateError {}

/// Statistics from one scrub pass over a substrate.
///
/// Substrates without a code layer (plain DRAM, bare ciphertext) report
/// zeros: their scrub is a no-op by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrubSummary {
    /// Words whose single-bit error was corrected in place.
    pub corrected: usize,
    /// Words with a detected-but-uncorrectable (multi-bit) error.
    pub uncorrectable: usize,
}

impl ScrubSummary {
    /// True when the pass found nothing to fix or report.
    pub fn is_clean(&self) -> bool {
        self.corrected == 0 && self.uncorrectable == 0
    }

    /// Folds another pass's counts into this summary (shard-by-shard
    /// and layer-by-layer sweeps accumulate through this).
    pub fn absorb(&mut self, other: &ScrubSummary) {
        self.corrected += other.corrected;
        self.uncorrectable += other.uncorrectable;
    }
}

/// The physical arrangement of a substrate's raw bit image, as a grid
/// of rows of raw words — the coordinate system correlated-fault
/// injectors (rowhammer-style row/column bursts) plan over.
///
/// A **row** models one DRAM row / cache line / cipher block worth of
/// adjacent raw words: the blast radius of a correlated disturbance.
/// Plain and SECDED substrates group 4 data/code words per row (a
/// 16-byte beat); the XTS substrates use one 128-bit cipher block per
/// row, since that is the unit a disturbance garbles on decrypt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawGeometry {
    /// Bits per raw word (32 plain, 39 SECDED, 128 XTS block).
    pub word_bits: usize,
    /// Raw words per row.
    pub words_per_row: usize,
}

impl RawGeometry {
    /// Bits per row.
    pub fn row_bits(&self) -> usize {
        self.word_bits * self.words_per_row
    }

    /// Number of (possibly ragged) rows covering a raw image of
    /// `raw_bits` bits.
    pub fn rows(&self, raw_bits: usize) -> usize {
        raw_bits.div_ceil(self.row_bits().max(1))
    }
}

/// A buffer of CNN weights held in some memory substrate.
///
/// The trait splits the world into **plaintext space** (what
/// [`read_weights`](WeightSubstrate::read_weights) returns, what
/// inference and MILR observe) and **raw space** (the substrate's
/// physical bit image: data words, ECC code words, or ciphertext).
/// Faults happen in raw space; protection and recovery reason about
/// plaintext space. Implementations define the mapping.
pub trait WeightSubstrate: Send + Sync {
    /// Short human-readable substrate name (report headers).
    fn label(&self) -> &'static str;

    /// Number of weights stored.
    fn len(&self) -> usize;

    /// True when no weights are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bits of the raw representation — the space over which
    /// RBER faults are drawn.
    fn raw_bits(&self) -> usize;

    /// Index of the raw word (data word, code word, or cipher block)
    /// containing the given raw bit, for affected-word accounting.
    ///
    /// # Panics
    ///
    /// May panic when `bit >= self.raw_bits()`.
    fn raw_word_of_bit(&self, bit: usize) -> usize;

    /// The row/word layout of the raw image — the coordinate system
    /// correlated-fault planners (row/column bursts) use. Constant for
    /// a given substrate kind.
    fn raw_geometry(&self) -> RawGeometry;

    /// Reads one bit of the raw representation, in the same indexing as
    /// [`flip_raw_bit`](WeightSubstrate::flip_raw_bit). Stuck-at fault
    /// models need this: re-asserting a stuck cell is `flip` only when
    /// the current value differs, so a blind re-flip cannot accidentally
    /// *heal* the bit after a scrub already rewrote it.
    ///
    /// # Panics
    ///
    /// Panics when `bit >= self.raw_bits()`.
    fn raw_bit(&self, bit: usize) -> bool;

    /// Flips one bit of the raw representation.
    ///
    /// # Panics
    ///
    /// Panics when `bit >= self.raw_bits()`.
    fn flip_raw_bit(&mut self, bit: usize);

    /// Decodes the buffer to plaintext weights, best-effort, exactly as
    /// an inference read would observe them. Does not modify storage.
    fn read_weights(&self) -> Vec<f32>;

    /// Decodes the buffer to plaintext weights directly into `out`,
    /// avoiding the intermediate `Vec` of
    /// [`read_weights`](WeightSubstrate::read_weights) where the
    /// substrate can (plain storage is a straight `copy_from_slice`).
    /// The default falls back to decoding into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics when `out.len()` differs from
    /// [`len`](WeightSubstrate::len).
    fn read_weights_into(&self, out: &mut [f32]) {
        let decoded = self.read_weights();
        assert_eq!(
            out.len(),
            decoded.len(),
            "read_weights_into buffer of {} cannot hold {} weights",
            out.len(),
            decoded.len()
        );
        out.copy_from_slice(&decoded);
    }

    /// Replaces the stored weights (re-encoding / re-encrypting as the
    /// substrate requires) — the write-back path of MILR recovery.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::LengthMismatch`] when `weights.len()` differs
    /// from [`len`](WeightSubstrate::len).
    fn write_weights(&mut self, weights: &[f32]) -> Result<(), SubstrateError>;

    /// Replaces only the given `(index, value)` weights, re-encoding /
    /// re-encrypting **no more raw state than those weights touch** —
    /// on coded substrates an untouched word's raw bits (including any
    /// in-flight error state a fault campaign planted there) survive
    /// the write verbatim. This is what lets composed raw+plaintext
    /// campaigns keep honest scrub statistics: a plaintext-space
    /// injection must not silently launder a neighboring word's raw
    /// errors through a whole-buffer re-encode.
    ///
    /// The default falls back to a whole-buffer read-modify-write —
    /// correct for plain storage, but it re-encodes everything on coded
    /// substrates; every coded substrate in this crate overrides it
    /// with a surgical path.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::LengthMismatch`] when an index is out of
    /// range; backend errors as
    /// [`write_weights`](WeightSubstrate::write_weights).
    fn write_weights_sparse(&mut self, updates: &[(usize, f32)]) -> Result<(), SubstrateError> {
        if updates.is_empty() {
            return Ok(());
        }
        let len = self.len();
        let mut weights = self.read_weights();
        for &(idx, value) in updates {
            if idx >= len {
                return Err(SubstrateError::LengthMismatch {
                    expected: len,
                    got: idx + 1,
                });
            }
            weights[idx] = value;
        }
        self.write_weights(&weights)
    }

    /// Runs one error-scrub pass, repairing whatever the substrate's
    /// code layer can repair in place, and reports statistics. A no-op
    /// returning [`ScrubSummary::default`] for code-free substrates.
    fn scrub(&mut self) -> ScrubSummary;

    /// Extra storage the substrate needs beyond the 4 bytes per weight
    /// of the plaintext (check bits, padding) — the per-substrate
    /// column of the paper's storage tables, in bytes.
    fn storage_overhead(&self) -> usize;

    /// Serializes the substrate's **raw representation** to bytes — the
    /// persistence image. Raw state round-trips verbatim (including any
    /// in-flight error state), so a store can snapshot and restore a
    /// substrate without decoding it; see
    /// [`SubstrateKind::restore`](crate::SubstrateKind::restore) for the
    /// inverse. The image length for a given kind and weight count is
    /// fixed ([`SubstrateKind::raw_image_bytes`](crate::SubstrateKind::raw_image_bytes)).
    fn export_raw(&self) -> Vec<u8>;

    /// Replaces the substrate's **raw representation** from an image —
    /// the inverse of [`export_raw`](WeightSubstrate::export_raw), in
    /// place, without decoding to plaintext. This is the peer-repair
    /// write path: a damaged replica overwrites its raw pages with a
    /// healthy peer's certified image, bit for bit, superseding
    /// whatever (possibly corrupt, possibly dirty-cached) state the
    /// substrate held. File-backed substrates commit the imported pages
    /// through their [`PageCommitter`](crate::PageCommitter).
    ///
    /// # Errors
    ///
    /// [`SubstrateError::Backend`] when `raw` is not a valid image for
    /// this substrate's kind and weight count (wrong length), or the
    /// backing store rejects the write.
    fn import_raw(&mut self, raw: &[u8]) -> Result<(), SubstrateError>;

    /// Forces any buffered state down to the substrate's backing store.
    /// A no-op for purely in-memory substrates; the file-backed
    /// substrate commits its dirty pages through its
    /// [`PageCommitter`](crate::PageCommitter).
    ///
    /// # Errors
    ///
    /// [`SubstrateError::Backend`] when the backing store rejects the
    /// write.
    fn flush(&mut self) -> Result<(), SubstrateError> {
        Ok(())
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn scrub_summary_clean() {
        assert!(ScrubSummary::default().is_clean());
        assert!(!ScrubSummary {
            corrected: 1,
            uncorrectable: 0
        }
        .is_clean());
    }

    #[test]
    fn substrate_error_displays() {
        let e = SubstrateError::LengthMismatch {
            expected: 4,
            got: 5,
        };
        assert!(e.to_string().contains("4"));
        assert!(SubstrateError::Backend("boom".into())
            .to_string()
            .contains("boom"));
    }
}
