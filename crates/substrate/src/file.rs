//! File-backed weight storage: [`FileSubstrate`] pages a substrate's
//! **raw image** onto a file, so raw-space faults, scrubs, and
//! plaintext reads/writes hit disk pages rather than RAM — the on-disk
//! bytes are substrate-encoded, which means disk corruption lands in
//! exactly the raw space the paper's error model (Eq. 1–6) reasons
//! about.
//!
//! The weight range is split into fixed-weight **pages**; each page is
//! an independent instance of the base encoding (its own SECDED words,
//! its own XTS data units), so any operation touches only the pages it
//! needs and a bounded LRU **block cache** lets models larger than the
//! cache budget stream. Dirty pages are written back on eviction and on
//! [`WeightSubstrate::flush`], always through a [`PageCommitter`] — the
//! seam where `milr-store` substitutes its crash-consistent journal for
//! the default direct write.

use crate::{RawGeometry, ScrubSummary, SubstrateError, SubstrateKind, WeightSubstrate};
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Positioned I/O over some backing file, shareable across substrates.
///
/// A deliberately tiny seam: `milr-store` implements it over the
/// container file (and can swap the descriptor after an atomic-rename
/// commit); the built-in [`StdFile`] serves standalone use.
pub trait PageFile: Send + Sync {
    /// Reads exactly `buf.len()` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors, including short reads.
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> std::io::Result<()>;

    /// Writes all of `buf` at `offset`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn write_all_at(&self, offset: u64, buf: &[u8]) -> std::io::Result<()>;

    /// Forces written data to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn sync(&self) -> std::io::Result<()>;
}

/// [`PageFile`] over one `std::fs::File` behind a mutex (portable
/// seek-based positioned I/O), with descriptor replacement for
/// atomic-rename commits.
pub struct StdFile {
    file: Mutex<File>,
}

impl StdFile {
    /// Creates (truncating) a read-write file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(StdFile {
            file: Mutex::new(file),
        })
    }

    /// Opens an existing file at `path` read-write.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let file = File::options().read(true).write(true).open(path)?;
        Ok(StdFile {
            file: Mutex::new(file),
        })
    }

    /// Swaps the underlying descriptor — after a shadow file is renamed
    /// over the original path, readers holding this handle must move to
    /// the new inode or they would keep reading (and writing!) the
    /// unlinked old one.
    pub fn replace(&self, file: File) {
        *self.file.lock().expect("file lock poisoned") = file;
    }

    /// Current file length in bytes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn byte_len(&self) -> std::io::Result<u64> {
        Ok(self
            .file
            .lock()
            .expect("file lock poisoned")
            .metadata()?
            .len())
    }
}

impl PageFile for StdFile {
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
        let mut file = self.file.lock().expect("file lock poisoned");
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)
    }

    fn write_all_at(&self, offset: u64, buf: &[u8]) -> std::io::Result<()> {
        let mut file = self.file.lock().expect("file lock poisoned");
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(buf)
    }

    fn sync(&self) -> std::io::Result<()> {
        self.file.lock().expect("file lock poisoned").sync_all()
    }
}

/// One pending page write: the page's new raw image at its absolute
/// file offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PagePatch {
    /// Absolute file offset of the page.
    pub offset: u64,
    /// The page's full raw image.
    pub bytes: Vec<u8>,
}

/// Durable application of a batch of page writes.
///
/// [`FileSubstrate`] never writes its file directly: every write-back
/// (cache eviction, flush) goes through a committer, so the store layer
/// can interpose a crash-consistent journal. The contract: after
/// `commit` returns, the patches are applied; if the process dies
/// mid-commit, a subsequent recovery pass must observe either all of
/// the batch or none of it.
pub trait PageCommitter: Send + Sync {
    /// Applies the batch durably.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the batch must not be partially visible
    /// after crash recovery.
    fn commit(&self, patches: &[PagePatch]) -> std::io::Result<()>;
}

/// The default committer: write the patches in place and sync. Not
/// torn-write safe (a kill mid-batch leaves partial pages) — stores
/// that need crash consistency provide a journaling committer instead.
pub struct DirectCommitter {
    io: Arc<dyn PageFile>,
}

impl DirectCommitter {
    /// Commits through the given file.
    pub fn new(io: Arc<dyn PageFile>) -> Self {
        DirectCommitter { io }
    }
}

impl PageCommitter for DirectCommitter {
    fn commit(&self, patches: &[PagePatch]) -> std::io::Result<()> {
        for p in patches {
            self.io.write_all_at(p.offset, &p.bytes)?;
        }
        self.io.sync()
    }
}

/// Geometry of one page.
#[derive(Debug, Clone)]
struct PageGeom {
    /// Absolute file offset of the page's raw image.
    offset: u64,
    /// Weights stored by the page (the final page may be shorter).
    weights: usize,
    /// Raw image bytes.
    raw_bytes: usize,
}

/// A cached, decoded-into-memory page.
struct CachedPage {
    sub: Box<dyn WeightSubstrate>,
    dirty: bool,
}

/// Bounded write-back page cache.
struct PageCache {
    map: HashMap<usize, CachedPage>,
    /// Recency order, most recent last.
    lru: Vec<usize>,
}

/// A [`WeightSubstrate`] whose raw image lives in a paged region of a
/// file. See the [module docs](self) for the design.
pub struct FileSubstrate {
    kind: SubstrateKind,
    io: Arc<dyn PageFile>,
    committer: Arc<dyn PageCommitter>,
    pages: Vec<PageGeom>,
    /// Prefix sums of per-page weight counts (`len = pages + 1`).
    weight_prefix: Vec<usize>,
    /// Prefix sums of per-page raw-bit counts (`len = pages + 1`).
    rawbit_prefix: Vec<usize>,
    len: usize,
    /// Cache budget in pages (≥ 1).
    cache_pages: usize,
    cache: Mutex<PageCache>,
    /// When set, the backing file is a private temp file removed on
    /// drop (the `SubstrateKind::File*` convenience arms).
    temp_path: Option<PathBuf>,
}

impl std::fmt::Debug for FileSubstrate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileSubstrate")
            .field("kind", &self.kind)
            .field("weights", &self.len)
            .field("pages", &self.pages.len())
            .field("cache_pages", &self.cache_pages)
            .finish()
    }
}

/// Computes page geometry for `len` weights of `kind` starting at
/// `base_offset`, pages of `page_weights` weights each.
fn geometry(
    kind: SubstrateKind,
    base_offset: u64,
    len: usize,
    page_weights: usize,
) -> (Vec<PageGeom>, Vec<usize>, Vec<usize>) {
    assert!(page_weights > 0, "pages must hold at least one weight");
    let mut pages = Vec::new();
    let mut weight_prefix = vec![0usize];
    let mut rawbit_prefix = vec![0usize];
    let mut offset = base_offset;
    let mut done = 0usize;
    while done < len {
        let weights = page_weights.min(len - done);
        let raw_bytes = kind.raw_image_bytes(weights);
        pages.push(PageGeom {
            offset,
            weights,
            raw_bytes,
        });
        offset += raw_bytes as u64;
        done += weights;
        weight_prefix.push(done);
        rawbit_prefix.push(rawbit_prefix.last().unwrap() + kind.raw_bits_for(weights));
    }
    (pages, weight_prefix, rawbit_prefix)
}

impl FileSubstrate {
    /// Total raw-region bytes a substrate of `kind` holding `len`
    /// weights occupies at `page_weights` weights per page — the
    /// store's layout formula.
    pub fn region_bytes(kind: SubstrateKind, len: usize, page_weights: usize) -> usize {
        let (pages, _, _) = geometry(kind.base(), 0, len, page_weights);
        pages.iter().map(|p| p.raw_bytes).sum()
    }

    /// Encodes `weights` of base kind `kind` into pages written at
    /// `base_offset` of `io`, and returns the substrate over them. The
    /// pages are written directly (creation is not a commit — the
    /// caller makes the whole container durable).
    ///
    /// # Errors
    ///
    /// [`SubstrateError::Backend`] on I/O failure.
    ///
    /// # Panics
    ///
    /// Panics when `kind` is file-backed or `page_weights == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        kind: SubstrateKind,
        io: Arc<dyn PageFile>,
        committer: Arc<dyn PageCommitter>,
        base_offset: u64,
        weights: &[f32],
        page_weights: usize,
        cache_pages: usize,
    ) -> Result<Self, SubstrateError> {
        assert!(!kind.is_file_backed(), "inner encoding must be in-memory");
        let sub = Self::open(
            kind,
            io,
            committer,
            base_offset,
            weights.len(),
            page_weights,
            cache_pages,
        );
        for (i, page) in sub.pages.iter().enumerate() {
            let chunk = &weights[sub.weight_prefix[i]..sub.weight_prefix[i + 1]];
            let image = kind.store(chunk).export_raw();
            debug_assert_eq!(image.len(), page.raw_bytes);
            sub.io
                .write_all_at(page.offset, &image)
                .map_err(|e| SubstrateError::Backend(format!("writing page {i}: {e}")))?;
        }
        sub.io
            .sync()
            .map_err(|e| SubstrateError::Backend(format!("syncing pages: {e}")))?;
        Ok(sub)
    }

    /// Attaches to existing pages (the cold-start path). No I/O happens
    /// until a page is first touched.
    ///
    /// # Panics
    ///
    /// Panics when `kind` is file-backed or `page_weights == 0`.
    pub fn open(
        kind: SubstrateKind,
        io: Arc<dyn PageFile>,
        committer: Arc<dyn PageCommitter>,
        base_offset: u64,
        len: usize,
        page_weights: usize,
        cache_pages: usize,
    ) -> Self {
        assert!(!kind.is_file_backed(), "inner encoding must be in-memory");
        let (pages, weight_prefix, rawbit_prefix) = geometry(kind, base_offset, len, page_weights);
        FileSubstrate {
            kind,
            io,
            committer,
            pages,
            weight_prefix,
            rawbit_prefix,
            len,
            cache_pages: cache_pages.max(1),
            cache: Mutex::new(PageCache {
                map: HashMap::new(),
                lru: Vec::new(),
            }),
            temp_path: None,
        }
    }

    /// Marks the backing file as a private temp file to remove on drop.
    pub(crate) fn with_temp_path(mut self, path: PathBuf) -> Self {
        self.temp_path = Some(path);
        self
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Runs `f` on the cached (loading if necessary) page `index`,
    /// optionally marking it dirty; evicts over-budget pages through
    /// the committer.
    // The entry API cannot express the load-then-maybe-evict dance
    // (eviction needs the whole map mutable while the entry is held).
    #[allow(clippy::map_entry)]
    fn with_page<R>(
        &self,
        index: usize,
        dirty: bool,
        f: impl FnOnce(&mut Box<dyn WeightSubstrate>) -> R,
    ) -> R {
        let mut cache = self.cache.lock().expect("page cache poisoned");
        if !cache.map.contains_key(&index) {
            let geom = &self.pages[index];
            let mut image = vec![0u8; geom.raw_bytes];
            self.io
                .read_exact_at(geom.offset, &mut image)
                .unwrap_or_else(|e| panic!("reading page {index} of {}: {e}", self.kind));
            let sub = self
                .kind
                .restore(&image, geom.weights)
                .expect("geometry guarantees the image length");
            cache.map.insert(index, CachedPage { sub, dirty: false });
            cache.lru.push(index);
            // Evict least-recently-used pages beyond the budget (never
            // the page being touched).
            while cache.map.len() > self.cache_pages {
                let Some(pos) = cache.lru.iter().position(|&p| p != index) else {
                    break;
                };
                let victim = cache.lru.remove(pos);
                let page = cache.map.remove(&victim).expect("lru tracks the map");
                if page.dirty {
                    self.committer
                        .commit(&[PagePatch {
                            offset: self.pages[victim].offset,
                            bytes: page.sub.export_raw(),
                        }])
                        .unwrap_or_else(|e| panic!("writing back page {victim}: {e}"));
                }
            }
        } else {
            let pos = cache
                .lru
                .iter()
                .position(|&p| p == index)
                .expect("cached page is in the lru");
            let idx = cache.lru.remove(pos);
            cache.lru.push(idx);
        }
        let page = cache.map.get_mut(&index).expect("page just ensured");
        page.dirty |= dirty;
        f(&mut page.sub)
    }

    /// The page holding global raw bit `bit`.
    fn page_of_raw_bit(&self, bit: usize) -> usize {
        assert!(
            bit < *self.rawbit_prefix.last().unwrap(),
            "raw bit {bit} out of range"
        );
        self.rawbit_prefix.partition_point(|&o| o <= bit) - 1
    }
}

impl WeightSubstrate for FileSubstrate {
    fn label(&self) -> &'static str {
        match self.kind {
            SubstrateKind::Plain => "file-backed plain",
            SubstrateKind::Secded => "file-backed SECDED",
            SubstrateKind::Xts => "file-backed AES-XTS",
            SubstrateKind::Int8 => "file-backed int8",
            SubstrateKind::Fp16 => "file-backed fp16",
            SubstrateKind::Int8Secded => "file-backed int8 + SECDED",
            SubstrateKind::Fp16Secded => "file-backed fp16 + SECDED",
            _ => "file-backed AES-XTS + SECDED",
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn raw_bits(&self) -> usize {
        *self.rawbit_prefix.last().unwrap()
    }

    fn raw_word_of_bit(&self, bit: usize) -> usize {
        // Raw "words" are page-local; give them a global index by
        // offsetting with the page's first word.
        let page = self.page_of_raw_bit(bit);
        let local = bit - self.rawbit_prefix[page];
        let words_before: usize = (0..page)
            .map(|p| self.kind.raw_words_for(self.pages[p].weights))
            .sum();
        words_before + self.with_page(page, false, |sub| sub.raw_word_of_bit(local))
    }

    fn raw_geometry(&self) -> RawGeometry {
        self.kind.raw_geometry()
    }

    fn raw_bit(&self, bit: usize) -> bool {
        let page = self.page_of_raw_bit(bit);
        let local = bit - self.rawbit_prefix[page];
        self.with_page(page, false, |sub| sub.raw_bit(local))
    }

    fn flip_raw_bit(&mut self, bit: usize) {
        let page = self.page_of_raw_bit(bit);
        let local = bit - self.rawbit_prefix[page];
        self.with_page(page, true, |sub| sub.flip_raw_bit(local));
    }

    fn read_weights(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len);
        for page in 0..self.pages.len() {
            out.extend(self.with_page(page, false, |sub| sub.read_weights()));
        }
        out
    }

    fn write_weights(&mut self, weights: &[f32]) -> Result<(), SubstrateError> {
        if weights.len() != self.len {
            return Err(SubstrateError::LengthMismatch {
                expected: self.len,
                got: weights.len(),
            });
        }
        for page in 0..self.pages.len() {
            let chunk = &weights[self.weight_prefix[page]..self.weight_prefix[page + 1]];
            self.with_page(page, true, |sub| sub.write_weights(chunk))?;
        }
        Ok(())
    }

    fn write_weights_sparse(&mut self, updates: &[(usize, f32)]) -> Result<(), SubstrateError> {
        for &(idx, _) in updates {
            if idx >= self.len {
                return Err(SubstrateError::LengthMismatch {
                    expected: self.len,
                    got: idx + 1,
                });
            }
        }
        // Group updates by page so each page is loaded (and dirtied)
        // once, with page-local indices.
        let mut by_page: Vec<(usize, Vec<(usize, f32)>)> = Vec::new();
        for &(idx, value) in updates {
            let page = self.weight_prefix.partition_point(|&o| o <= idx) - 1;
            let local = idx - self.weight_prefix[page];
            match by_page.iter_mut().find(|(p, _)| *p == page) {
                Some((_, list)) => list.push((local, value)),
                None => by_page.push((page, vec![(local, value)])),
            }
        }
        for (page, list) in by_page {
            self.with_page(page, true, |sub| sub.write_weights_sparse(&list))?;
        }
        Ok(())
    }

    fn scrub(&mut self) -> ScrubSummary {
        let mut total = ScrubSummary::default();
        for page in 0..self.pages.len() {
            // Peek first so a clean scrub does not dirty the page.
            let summary = self.with_page(page, false, |sub| sub.scrub());
            if summary.corrected > 0 {
                self.with_page(page, true, |_| {});
            }
            total.corrected += summary.corrected;
            total.uncorrectable += summary.uncorrectable;
        }
        total
    }

    fn export_raw(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.pages.iter().map(|p| p.raw_bytes).sum());
        for page in 0..self.pages.len() {
            out.extend(self.with_page(page, false, |sub| sub.export_raw()));
        }
        out
    }

    fn import_raw(&mut self, raw: &[u8]) -> Result<(), SubstrateError> {
        let total: usize = self.pages.iter().map(|p| p.raw_bytes).sum();
        if raw.len() != total {
            return Err(SubstrateError::Backend(format!(
                "raw image of {} bytes does not match the {total}-byte page region",
                raw.len()
            )));
        }
        let mut patches = Vec::with_capacity(self.pages.len());
        let mut done = 0usize;
        for page in &self.pages {
            patches.push(PagePatch {
                offset: page.offset,
                bytes: raw[done..done + page.raw_bytes].to_vec(),
            });
            done += page.raw_bytes;
        }
        self.committer
            .commit(&patches)
            .map_err(|e| SubstrateError::Backend(format!("importing pages: {e}")))?;
        // The imported image supersedes every cached page, dirty ones
        // included — but only drop them once the commit landed: on a
        // failed commit the cache (including unflushed dirty writes)
        // must survive, or the error would silently revert
        // previously-acknowledged state.
        let mut cache = self.cache.lock().expect("page cache poisoned");
        cache.map.clear();
        cache.lru.clear();
        Ok(())
    }

    fn flush(&mut self) -> Result<(), SubstrateError> {
        let mut cache = self.cache.lock().expect("page cache poisoned");
        let mut patches = Vec::new();
        let mut flushed = Vec::new();
        for (&index, page) in cache.map.iter() {
            if page.dirty {
                patches.push(PagePatch {
                    offset: self.pages[index].offset,
                    bytes: page.sub.export_raw(),
                });
                flushed.push(index);
            }
        }
        if patches.is_empty() {
            return Ok(());
        }
        patches.sort_by_key(|p| p.offset);
        self.committer
            .commit(&patches)
            .map_err(|e| SubstrateError::Backend(format!("flushing dirty pages: {e}")))?;
        for index in flushed {
            cache.map.get_mut(&index).expect("still cached").dirty = false;
        }
        Ok(())
    }

    fn storage_overhead(&self) -> usize {
        // Actual extra file bytes beyond 4 per weight.
        self.pages.iter().map(|p| p.raw_bytes).sum::<usize>() - self.len * 4
    }
}

impl Drop for FileSubstrate {
    fn drop(&mut self) {
        if let Some(path) = self.temp_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32 * 0.21 - 4.0).collect()
    }

    fn file_pair(name: &str) -> (Arc<StdFile>, Arc<DirectCommitter>, PathBuf) {
        let path = std::env::temp_dir().join(format!(
            "milr-filesub-test-{}-{name}.raw",
            std::process::id()
        ));
        let io = Arc::new(StdFile::create(&path).unwrap());
        let committer = Arc::new(DirectCommitter::new(Arc::clone(&io) as _));
        (io, committer, path)
    }

    #[test]
    fn pages_roundtrip_for_every_base_kind() {
        for kind in SubstrateKind::ALL {
            let w = weights(37); // ragged last page at 16/page
            let (io, committer, path) = file_pair(&format!("rt-{kind:?}"));
            let sub =
                FileSubstrate::create(kind, io.clone(), committer.clone(), 0, &w, 16, 2).unwrap();
            assert_eq!(sub.len(), 37, "{kind}");
            assert_eq!(sub.page_count(), 3, "{kind}");
            assert_eq!(sub.read_weights(), w, "{kind}");
            assert_eq!(
                sub.raw_bits(),
                kind.raw_bits_for(16) * 2 + kind.raw_bits_for(5)
            );
            drop(sub);
            // Reopen cold: the pages alone reconstruct the weights.
            let reopened = FileSubstrate::open(kind, io.clone(), committer, 0, 37, 16, 1);
            assert_eq!(reopened.read_weights(), w, "{kind} cold");
            drop(reopened);
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn streaming_beyond_cache_budget_evicts_and_persists() {
        let w = weights(64);
        let (io, committer, path) = file_pair("evict");
        let mut sub = FileSubstrate::create(
            SubstrateKind::Secded,
            io.clone(),
            committer.clone(),
            0,
            &w,
            8,
            1,
        )
        .unwrap();
        // Touch every page with a write: evictions must write back.
        let w2: Vec<f32> = w.iter().map(|v| v + 1.0).collect();
        sub.write_weights(&w2).unwrap();
        assert_eq!(sub.read_weights(), w2);
        sub.flush().unwrap();
        drop(sub);
        let reopened = FileSubstrate::open(SubstrateKind::Secded, io, committer, 0, 64, 8, 1);
        assert_eq!(reopened.read_weights(), w2, "evicted pages lost on disk");
        drop(reopened);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn raw_flip_and_scrub_hit_disk_pages() {
        let w = weights(32);
        let (io, committer, path) = file_pair("scrub");
        let mut sub = FileSubstrate::create(
            SubstrateKind::Secded,
            io.clone(),
            committer.clone(),
            0,
            &w,
            8,
            2,
        )
        .unwrap();
        // Flip one raw bit in page 2's space and flush the error state
        // to disk.
        let bit = SubstrateKind::Secded.raw_bits_for(8) * 2 + 11;
        sub.flip_raw_bit(bit);
        sub.flush().unwrap();
        drop(sub);
        // A cold open sees the fault; scrub corrects it in storage.
        let mut cold = FileSubstrate::open(
            SubstrateKind::Secded,
            io.clone(),
            committer.clone(),
            0,
            32,
            8,
            2,
        );
        let summary = cold.scrub();
        assert_eq!(summary.corrected, 1);
        assert_eq!(summary.uncorrectable, 0);
        cold.flush().unwrap();
        drop(cold);
        let mut healed = FileSubstrate::open(SubstrateKind::Secded, io, committer, 0, 32, 8, 2);
        assert!(healed.scrub().is_clean(), "correction was not persisted");
        assert_eq!(healed.read_weights(), w);
        drop(healed);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn flush_is_idempotent_and_scoped_to_dirty_pages() {
        let w = weights(24);
        let (io, committer, path) = file_pair("flush");
        let mut sub =
            FileSubstrate::create(SubstrateKind::Plain, io, committer, 0, &w, 8, 4).unwrap();
        sub.flush().unwrap(); // nothing dirty: no-op
        sub.flip_raw_bit(3);
        sub.flush().unwrap();
        sub.flush().unwrap();
        let seen = sub.read_weights();
        assert_eq!(seen[0].to_bits(), w[0].to_bits() ^ (1 << 3));
        drop(sub);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn export_raw_includes_cached_dirty_state() {
        let w = weights(12);
        let (io, committer, path) = file_pair("export");
        let mut sub =
            FileSubstrate::create(SubstrateKind::XtsSecded, io, committer, 0, &w, 4, 8).unwrap();
        sub.flip_raw_bit(5); // dirty, unflushed
        let image = sub.export_raw();
        assert_eq!(
            image.len(),
            FileSubstrate::region_bytes(SubstrateKind::XtsSecded, 12, 4)
        );
        // The exported image carries the unflushed flip: restoring page
        // 0 from it shows the error.
        let page0 = SubstrateKind::XtsSecded
            .restore(&image[..SubstrateKind::XtsSecded.raw_image_bytes(4)], 4)
            .unwrap();
        let mut reference = SubstrateKind::XtsSecded.store(&w[..4]);
        reference.flip_raw_bit(5);
        assert_eq!(page0.export_raw(), reference.export_raw());
        drop(sub);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn temp_file_arms_clean_up() {
        let sub = SubstrateKind::FileSecded.store(&weights(10));
        assert_eq!(sub.len(), 10);
        drop(sub);
        // No assertion on the path (private), but the drop must not
        // panic; creation of many arms must not collide.
        let a = SubstrateKind::FilePlain.store(&weights(4));
        let b = SubstrateKind::FilePlain.store(&weights(4));
        assert_eq!(a.read_weights(), b.read_weights());
    }
}
