//! Substrate selector: the value-level handle the benchmark harness
//! composes with recovery arms, so every substrate × recovery
//! combination runs through one generic trial path — and, since the
//! persistence work, the codec that maps each substrate's **raw image**
//! to and from bytes so weight pages can live in a file.

use crate::file::{DirectCommitter, FileSubstrate, StdFile};
use crate::quant::{QuantFormat, QuantMemory, QuantSecdedMemory};
use crate::{PlainMemory, RawGeometry, SubstrateError, WeightSubstrate, XtsSecdedMemory};
use milr_ecc::SecdedMemory;
use milr_xts::{EncryptedMemory, XtsCipher, BLOCK_BYTES};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default XTS data key for experiment substrates. Experiments model a
/// fixed memory-encryption engine; the key value itself is irrelevant
/// to the error statistics, it only has to be deterministic.
const DATA_KEY: [u8; 16] = *b"MILR-data-key-01";
/// Default XTS tweak key for experiment substrates.
const TWEAK_KEY: [u8; 16] = *b"MILR-tweak-key-1";

/// Weights per page of the convenience `File*` arms.
const FILE_ARM_PAGE_WEIGHTS: usize = 1024;
/// Cached pages of the convenience `File*` arms.
const FILE_ARM_CACHE_PAGES: usize = 8;

/// Monotonic counter distinguishing the temp files of `File*` arms.
static FILE_ARM_SEQ: AtomicU64 = AtomicU64::new(0);

/// The memory substrates of the paper's evaluation matrix, plus their
/// file-backed twins (the same raw encoding paged onto disk through
/// [`FileSubstrate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubstrateKind {
    /// Plain `f32` words in unprotected DRAM.
    Plain,
    /// One (39,32) SECDED code word per weight (ECC DRAM).
    Secded,
    /// AES-XTS ciphertext (encrypted-VM DRAM).
    Xts,
    /// SECDED over the ciphertext words (ECC DRAM under encryption).
    XtsSecded,
    /// Quantized int8 lattice bytes in unprotected DRAM (1 byte/weight).
    Int8,
    /// IEEE half-precision words in unprotected DRAM (2 bytes/weight).
    Fp16,
    /// Int8 bytes packed 4-per-word under (39,32) SECDED code words.
    Int8Secded,
    /// Fp16 words packed 2-per-word under (39,32) SECDED code words.
    Fp16Secded,
    /// Plain raw image paged onto a file.
    FilePlain,
    /// SECDED code words paged onto a file.
    FileSecded,
    /// AES-XTS ciphertext paged onto a file.
    FileXts,
    /// SECDED-over-ciphertext words paged onto a file.
    FileXtsSecded,
}

impl SubstrateKind {
    /// Every in-memory substrate, in the paper's presentation order.
    pub const ALL: [SubstrateKind; 4] = [
        SubstrateKind::Plain,
        SubstrateKind::Secded,
        SubstrateKind::Xts,
        SubstrateKind::XtsSecded,
    ];

    /// The quantized arms: reduced-precision page encodings whose grid
    /// points are exactly representable in f32, enabling MILR's exact
    /// integer-ring recovery (no ulp-snap search). Kept out of [`ALL`]
    /// because the classic arms promise bit-exact f32 round-trips;
    /// these promise grid-snapped round-trips instead.
    ///
    /// [`ALL`]: SubstrateKind::ALL
    pub const QUANTIZED: [SubstrateKind; 4] = [
        SubstrateKind::Int8,
        SubstrateKind::Fp16,
        SubstrateKind::Int8Secded,
        SubstrateKind::Fp16Secded,
    ];

    /// The file-backed twins, in the same order.
    pub const FILE_BACKED: [SubstrateKind; 4] = [
        SubstrateKind::FilePlain,
        SubstrateKind::FileSecded,
        SubstrateKind::FileXts,
        SubstrateKind::FileXtsSecded,
    ];

    /// The cipher used by the encrypted substrates this kind builds.
    pub fn cipher() -> XtsCipher {
        XtsCipher::new(&DATA_KEY, &TWEAK_KEY)
    }

    /// The in-memory encoding behind this kind (identity for the
    /// in-memory kinds, the paged encoding for the `File*` kinds).
    pub fn base(&self) -> SubstrateKind {
        match self {
            SubstrateKind::FilePlain => SubstrateKind::Plain,
            SubstrateKind::FileSecded => SubstrateKind::Secded,
            SubstrateKind::FileXts => SubstrateKind::Xts,
            SubstrateKind::FileXtsSecded => SubstrateKind::XtsSecded,
            base => *base,
        }
    }

    /// True for the file-backed kinds.
    pub fn is_file_backed(&self) -> bool {
        self.base() != *self
    }

    /// The quantized page encoding of this kind, if any.
    pub fn quant_format(&self) -> Option<QuantFormat> {
        match self.base() {
            SubstrateKind::Int8 | SubstrateKind::Int8Secded => Some(QuantFormat::Int8),
            SubstrateKind::Fp16 | SubstrateKind::Fp16Secded => Some(QuantFormat::Fp16),
            _ => None,
        }
    }

    /// True for the quantized kinds (weights stored on a reduced-
    /// precision grid instead of raw f32 bits).
    pub fn is_quantized(&self) -> bool {
        self.quant_format().is_some()
    }

    /// Encodes a weight buffer into a fresh substrate of this kind.
    ///
    /// `File*` kinds page the raw image onto a fresh temporary file
    /// (removed when the substrate drops) with a default cache budget —
    /// the convenience path for benchmarks and injector tests; stores
    /// build their [`FileSubstrate`]s over their own container files.
    ///
    /// # Panics
    ///
    /// `File*` kinds panic when the temporary file cannot be created.
    pub fn store(&self, weights: &[f32]) -> Box<dyn WeightSubstrate> {
        match self {
            SubstrateKind::Plain => Box::new(PlainMemory::store(weights)),
            SubstrateKind::Secded => Box::new(SecdedMemory::protect(weights)),
            SubstrateKind::Xts => Box::new(
                EncryptedMemory::encrypt(weights, Self::cipher())
                    .expect("padded plaintext length is always block-aligned"),
            ),
            SubstrateKind::XtsSecded => Box::new(XtsSecdedMemory::protect(weights, Self::cipher())),
            SubstrateKind::Int8 => Box::new(QuantMemory::store(QuantFormat::Int8, weights)),
            SubstrateKind::Fp16 => Box::new(QuantMemory::store(QuantFormat::Fp16, weights)),
            SubstrateKind::Int8Secded => {
                Box::new(QuantSecdedMemory::protect(QuantFormat::Int8, weights))
            }
            SubstrateKind::Fp16Secded => {
                Box::new(QuantSecdedMemory::protect(QuantFormat::Fp16, weights))
            }
            file => {
                let seq = FILE_ARM_SEQ.fetch_add(1, Ordering::Relaxed);
                let path = std::env::temp_dir()
                    .join(format!("milr-substrate-{}-{seq}.raw", std::process::id()));
                let io = Arc::new(StdFile::create(&path).expect("creating substrate temp file"));
                let committer = Arc::new(DirectCommitter::new(Arc::clone(&io) as _));
                let sub = FileSubstrate::create(
                    file.base(),
                    Arc::clone(&io) as _,
                    committer,
                    0,
                    weights,
                    FILE_ARM_PAGE_WEIGHTS,
                    FILE_ARM_CACHE_PAGES,
                )
                .expect("encoding into a fresh temp file cannot fail")
                .with_temp_path(path);
                Box::new(sub)
            }
        }
    }

    /// Reconstructs a substrate of this kind from its raw image (the
    /// inverse of [`WeightSubstrate::export_raw`]), preserving any
    /// error state the image carries bit-for-bit.
    ///
    /// Only defined for the in-memory kinds — a file-backed kind's
    /// image *is* its file, so restoring one goes through
    /// [`FileSubstrate::open`].
    ///
    /// # Errors
    ///
    /// [`SubstrateError::Backend`] when the image length does not match
    /// [`raw_image_bytes`](SubstrateKind::raw_image_bytes) for `len`,
    /// or this kind is file-backed.
    pub fn restore(
        &self,
        raw: &[u8],
        len: usize,
    ) -> Result<Box<dyn WeightSubstrate>, SubstrateError> {
        if raw.len() != self.raw_image_bytes(len) {
            return Err(SubstrateError::Backend(format!(
                "{self}: raw image of {} bytes cannot hold {len} weights (expected {})",
                raw.len(),
                self.raw_image_bytes(len)
            )));
        }
        let words_u64 = || -> Vec<u64> {
            raw.chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
                .collect()
        };
        match self {
            SubstrateKind::Plain => Ok(Box::new(PlainMemory::store(
                &raw.chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
                    .collect::<Vec<f32>>(),
            ))),
            SubstrateKind::Secded => Ok(Box::new(SecdedMemory::from_words(words_u64()))),
            SubstrateKind::Xts => Ok(Box::new(
                EncryptedMemory::from_ciphertext(raw.to_vec(), len, Self::cipher())
                    .map_err(|e| SubstrateError::Backend(e.to_string()))?,
            )),
            SubstrateKind::XtsSecded => Ok(Box::new(XtsSecdedMemory::from_words(
                words_u64(),
                len,
                Self::cipher(),
            ))),
            SubstrateKind::Int8 => Ok(Box::new(QuantMemory::from_bytes(
                QuantFormat::Int8,
                raw.to_vec(),
            ))),
            SubstrateKind::Fp16 => Ok(Box::new(QuantMemory::from_bytes(
                QuantFormat::Fp16,
                raw.to_vec(),
            ))),
            SubstrateKind::Int8Secded => Ok(Box::new(QuantSecdedMemory::from_words(
                QuantFormat::Int8,
                words_u64(),
                len,
            ))),
            SubstrateKind::Fp16Secded => Ok(Box::new(QuantSecdedMemory::from_words(
                QuantFormat::Fp16,
                words_u64(),
                len,
            ))),
            file => Err(SubstrateError::Backend(format!(
                "{file}: restore a file-backed substrate with FileSubstrate::open"
            ))),
        }
    }

    /// Exact byte length of the raw image this kind produces for `len`
    /// weights — the on-disk page-sizing formula, kept in lock-step
    /// with the substrates by test.
    pub fn raw_image_bytes(&self, len: usize) -> usize {
        match self.base() {
            SubstrateKind::Plain => len * 4,
            // One u64-stored (39,32) code word per weight.
            SubstrateKind::Secded => len * 8,
            // Whole 16-byte cipher blocks.
            SubstrateKind::Xts => len.div_ceil(4) * BLOCK_BYTES,
            // One u64-stored code word per ciphertext word, 4 per block.
            SubstrateKind::XtsSecded => len.div_ceil(4) * 4 * 8,
            SubstrateKind::Int8 => len,
            SubstrateKind::Fp16 => len * 2,
            // One u64-stored code word per 4 quantized bytes.
            SubstrateKind::Int8Secded => len.div_ceil(4) * 8,
            SubstrateKind::Fp16Secded => (len * 2).div_ceil(4) * 8,
            _ => unreachable!("base() never returns a file kind"),
        }
    }

    /// Raw (fault-surface) bits of a substrate of this kind holding
    /// `len` weights, without building one.
    pub fn raw_bits_for(&self, len: usize) -> usize {
        match self.base() {
            SubstrateKind::Plain => len * 32,
            SubstrateKind::Secded => len * 39,
            SubstrateKind::Xts => len.div_ceil(4) * BLOCK_BYTES * 8,
            SubstrateKind::XtsSecded => len.div_ceil(4) * 4 * 39,
            SubstrateKind::Int8 => len * 8,
            SubstrateKind::Fp16 => len * 16,
            SubstrateKind::Int8Secded => len.div_ceil(4) * 39,
            SubstrateKind::Fp16Secded => (len * 2).div_ceil(4) * 39,
            _ => unreachable!("base() never returns a file kind"),
        }
    }

    /// Raw words (data words, code words, or cipher blocks — the
    /// granularity of [`WeightSubstrate::raw_word_of_bit`]) of a
    /// substrate of this kind holding `len` weights.
    pub fn raw_words_for(&self, len: usize) -> usize {
        match self.base() {
            SubstrateKind::Plain | SubstrateKind::Secded => len,
            SubstrateKind::Xts => len.div_ceil(4),
            SubstrateKind::XtsSecded => len.div_ceil(4) * 4,
            SubstrateKind::Int8 | SubstrateKind::Fp16 => len,
            SubstrateKind::Int8Secded => len.div_ceil(4),
            SubstrateKind::Fp16Secded => (len * 2).div_ceil(4),
            _ => unreachable!("base() never returns a file kind"),
        }
    }

    /// Raw-space geometry of this kind — the row/word grid over which
    /// correlated burst campaigns are planned — without building a
    /// substrate. File-backed kinds share their base kind's geometry.
    pub fn raw_geometry(&self) -> RawGeometry {
        match self.base() {
            SubstrateKind::Plain => RawGeometry {
                word_bits: 32,
                words_per_row: 4,
            },
            SubstrateKind::Secded
            | SubstrateKind::XtsSecded
            | SubstrateKind::Int8Secded
            | SubstrateKind::Fp16Secded => RawGeometry {
                word_bits: 39,
                words_per_row: 4,
            },
            SubstrateKind::Int8 => RawGeometry {
                word_bits: 8,
                words_per_row: 16,
            },
            SubstrateKind::Fp16 => RawGeometry {
                word_bits: 16,
                words_per_row: 8,
            },
            SubstrateKind::Xts => RawGeometry {
                word_bits: BLOCK_BYTES * 8,
                words_per_row: 1,
            },
            _ => unreachable!("base() never returns a file kind"),
        }
    }

    /// Short name used in report headers and bench labels.
    pub fn name(&self) -> &'static str {
        match self {
            SubstrateKind::Plain => "plain",
            SubstrateKind::Secded => "secded",
            SubstrateKind::Xts => "xts",
            SubstrateKind::XtsSecded => "xts+secded",
            SubstrateKind::Int8 => "int8",
            SubstrateKind::Fp16 => "fp16",
            SubstrateKind::Int8Secded => "int8+secded",
            SubstrateKind::Fp16Secded => "fp16+secded",
            SubstrateKind::FilePlain => "file:plain",
            SubstrateKind::FileSecded => "file:secded",
            SubstrateKind::FileXts => "file:xts",
            SubstrateKind::FileXtsSecded => "file:xts+secded",
        }
    }
}

impl std::fmt::Display for SubstrateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_roundtrips() {
        let w: Vec<f32> = (0..10).map(|i| i as f32 * 0.7 - 3.0).collect();
        for kind in SubstrateKind::ALL
            .into_iter()
            .chain(SubstrateKind::FILE_BACKED)
        {
            let mem = kind.store(&w);
            assert_eq!(mem.len(), w.len(), "{kind}");
            assert_eq!(mem.read_weights(), w, "{kind}");
            assert!(mem.raw_bits() >= w.len() * 32, "{kind}");
        }
    }

    #[test]
    fn overheads_are_ordered() {
        let w = vec![1.0f32; 64];
        let plain = SubstrateKind::Plain.store(&w).storage_overhead();
        let secded = SubstrateKind::Secded.store(&w).storage_overhead();
        let xts = SubstrateKind::Xts.store(&w).storage_overhead();
        let both = SubstrateKind::XtsSecded.store(&w).storage_overhead();
        assert_eq!(plain, 0);
        assert_eq!(secded, 64 * 7 / 8);
        assert_eq!(xts, 0, "64 weights fill whole blocks");
        assert!(both >= secded, "composed substrate pays at least ECC");
    }

    #[test]
    fn display_names_are_stable() {
        let names: Vec<&str> = SubstrateKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["plain", "secded", "xts", "xts+secded"]);
        let file_names: Vec<&str> = SubstrateKind::FILE_BACKED
            .iter()
            .map(|k| k.name())
            .collect();
        assert_eq!(
            file_names,
            ["file:plain", "file:secded", "file:xts", "file:xts+secded"]
        );
    }

    #[test]
    fn file_kinds_map_to_bases() {
        for (file, base) in SubstrateKind::FILE_BACKED
            .into_iter()
            .zip(SubstrateKind::ALL)
        {
            assert_eq!(file.base(), base);
            assert!(file.is_file_backed());
            assert!(!base.is_file_backed());
            assert_eq!(base.base(), base);
        }
    }

    #[test]
    fn raw_image_formulas_match_substrates() {
        for len in [1usize, 3, 4, 5, 37, 64] {
            let w: Vec<f32> = (0..len).map(|i| i as f32 * 0.3 - 1.0).collect();
            for kind in SubstrateKind::ALL {
                let mem = kind.store(&w);
                assert_eq!(
                    mem.export_raw().len(),
                    kind.raw_image_bytes(len),
                    "{kind} image bytes for {len}"
                );
                assert_eq!(
                    mem.raw_bits(),
                    kind.raw_bits_for(len),
                    "{kind} raw bits for {len}"
                );
            }
        }
    }

    #[test]
    fn export_restore_roundtrips_error_state() {
        let w: Vec<f32> = (0..21).map(|i| i as f32 * 0.11 - 1.0).collect();
        for kind in SubstrateKind::ALL {
            let mut mem = kind.store(&w);
            // Leave raw-space error state in the image.
            mem.flip_raw_bit(7);
            mem.flip_raw_bit(8);
            let image = mem.export_raw();
            let restored = kind.restore(&image, w.len()).unwrap();
            assert_eq!(restored.len(), mem.len(), "{kind}");
            assert_eq!(restored.raw_bits(), mem.raw_bits(), "{kind}");
            let a: Vec<u32> = mem.read_weights().iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = restored
                .read_weights()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(a, b, "{kind}: restored plaintext diverged");
            assert_eq!(restored.export_raw(), image, "{kind}: image not stable");
        }
    }

    #[test]
    fn import_raw_overwrites_in_place_for_every_kind() {
        let a: Vec<f32> = (0..21).map(|i| i as f32 * 0.4 - 2.0).collect();
        let b: Vec<f32> = (0..21).map(|i| i as f32 * -0.7 + 1.0).collect();
        for kind in SubstrateKind::ALL
            .into_iter()
            .chain(SubstrateKind::FILE_BACKED)
        {
            let donor = kind.store(&b);
            let mut mem = kind.store(&a);
            // Leave corrupt raw state behind: import must supersede it.
            mem.flip_raw_bit(3);
            mem.import_raw(&donor.export_raw()).unwrap();
            let got: Vec<u32> = mem.read_weights().iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "{kind}: import did not restore donor bits");
            assert_eq!(mem.export_raw(), donor.export_raw(), "{kind}: raw image");
            // Wrong-length images are rejected without touching state.
            assert!(mem.import_raw(&donor.export_raw()[1..]).is_err(), "{kind}");
            assert_eq!(mem.export_raw(), donor.export_raw(), "{kind}: unchanged");
        }
    }

    #[test]
    fn kind_geometry_matches_substrates() {
        let w: Vec<f32> = (0..10).map(|i| i as f32 * 0.2 - 1.0).collect();
        for kind in SubstrateKind::ALL
            .into_iter()
            .chain(SubstrateKind::FILE_BACKED)
        {
            let mem = kind.store(&w);
            assert_eq!(mem.raw_geometry(), kind.raw_geometry(), "{kind}");
            let geo = kind.raw_geometry();
            assert!(geo.row_bits() > 0, "{kind}");
            assert!(geo.rows(mem.raw_bits()) >= 1, "{kind}");
        }
    }

    #[test]
    fn sparse_write_touches_only_selected_words() {
        let w: Vec<f32> = (0..12).map(|i| i as f32 * 0.5 - 3.0).collect();
        for kind in SubstrateKind::ALL
            .into_iter()
            .chain(SubstrateKind::FILE_BACKED)
        {
            let mut mem = kind.store(&w);
            let before = mem.export_raw();
            let mut want = w.clone();
            want[1] = 9.5;
            want[10] = -7.25;
            mem.write_weights_sparse(&[(1, 9.5), (10, -7.25)]).unwrap();
            let got: Vec<u32> = mem.read_weights().iter().map(|v| v.to_bits()).collect();
            let expect: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, expect, "{kind}: sparse write result");
            // Weights 4..8 sit in untouched words/blocks under every
            // kind: their raw bytes must be bit-identical afterwards.
            let after = mem.export_raw();
            let lo = kind.raw_image_bytes(4);
            let hi = kind.raw_image_bytes(8);
            assert_eq!(
                &after[lo..hi],
                &before[lo..hi],
                "{kind}: untouched middle region changed"
            );
            assert!(
                mem.write_weights_sparse(&[(w.len(), 0.0)]).is_err(),
                "{kind}: out-of-range index accepted"
            );
        }
    }

    #[test]
    fn quantized_kinds_roundtrip_grid_weights() {
        // Grid-aligned values (int8 lattice ⊂ fp16 grid) round-trip
        // bit-for-bit through every quantized kind.
        let w: Vec<f32> = (0..11).map(|i| (i - 5) as f32 * 0.015625).collect();
        for kind in SubstrateKind::QUANTIZED {
            assert!(kind.is_quantized(), "{kind}");
            assert!(!kind.is_file_backed(), "{kind}");
            assert_eq!(kind.base(), kind, "{kind}");
            let mem = kind.store(&w);
            assert_eq!(mem.len(), w.len(), "{kind}");
            let got: Vec<u32> = mem.read_weights().iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = w.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "{kind}");
            // Quantized pages are *smaller* than the f32 baseline.
            assert!(mem.raw_bits() < w.len() * 32, "{kind}");
        }
    }

    #[test]
    fn quantized_kinds_snap_offgrid_weights() {
        let w = [0.1f32, -0.77, 1.43];
        for kind in SubstrateKind::QUANTIZED {
            let format = kind.quant_format().unwrap();
            let mem = kind.store(&w);
            for (got, v) in mem.read_weights().iter().zip(w) {
                assert_eq!(got.to_bits(), format.snap(v).to_bits(), "{kind}: {v}");
            }
        }
    }

    #[test]
    fn quantized_raw_image_formulas_match_substrates() {
        for len in [1usize, 2, 3, 4, 5, 37, 64] {
            let w: Vec<f32> = (0..len).map(|i| i as f32 * 0.015625 - 0.5).collect();
            for kind in SubstrateKind::QUANTIZED {
                let mem = kind.store(&w);
                assert_eq!(
                    mem.export_raw().len(),
                    kind.raw_image_bytes(len),
                    "{kind} image bytes for {len}"
                );
                assert_eq!(
                    mem.raw_bits(),
                    kind.raw_bits_for(len),
                    "{kind} raw bits for {len}"
                );
                assert_eq!(
                    mem.raw_word_of_bit(mem.raw_bits() - 1) + 1,
                    kind.raw_words_for(len),
                    "{kind} raw words for {len}"
                );
                assert_eq!(mem.raw_geometry(), kind.raw_geometry(), "{kind}");
            }
        }
    }

    #[test]
    fn quantized_export_restore_roundtrips_error_state() {
        let w: Vec<f32> = (0..9).map(|i| i as f32 * 0.03125 - 0.125).collect();
        for kind in SubstrateKind::QUANTIZED {
            let mut mem = kind.store(&w);
            mem.flip_raw_bit(2);
            mem.flip_raw_bit(3);
            let image = mem.export_raw();
            let restored = kind.restore(&image, w.len()).unwrap();
            assert_eq!(restored.len(), mem.len(), "{kind}");
            let a: Vec<u32> = mem.read_weights().iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = restored
                .read_weights()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(a, b, "{kind}: restored plaintext diverged");
            assert_eq!(restored.export_raw(), image, "{kind}: image not stable");
            assert!(kind.restore(&image[1..], w.len()).is_err(), "{kind}");
        }
    }

    #[test]
    fn restore_rejects_bad_lengths() {
        for kind in SubstrateKind::ALL {
            let image = kind.store(&[1.0, 2.0]).export_raw();
            // 9 weights need more blocks/words than 2 under every kind.
            assert!(kind.restore(&image, 9).is_err(), "{kind}");
            assert!(kind.restore(&image[1..], 2).is_err(), "{kind}");
        }
        assert!(SubstrateKind::FilePlain.restore(&[0; 8], 2).is_err());
    }
}
