//! Substrate selector: the value-level handle the benchmark harness
//! composes with recovery arms, so every substrate × recovery
//! combination runs through one generic trial path.

use crate::{PlainMemory, WeightSubstrate, XtsSecdedMemory};
use milr_ecc::SecdedMemory;
use milr_xts::{EncryptedMemory, XtsCipher};

/// Default XTS data key for experiment substrates. Experiments model a
/// fixed memory-encryption engine; the key value itself is irrelevant
/// to the error statistics, it only has to be deterministic.
const DATA_KEY: [u8; 16] = *b"MILR-data-key-01";
/// Default XTS tweak key for experiment substrates.
const TWEAK_KEY: [u8; 16] = *b"MILR-tweak-key-1";

/// The memory substrates of the paper's evaluation matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubstrateKind {
    /// Plain `f32` words in unprotected DRAM.
    Plain,
    /// One (39,32) SECDED code word per weight (ECC DRAM).
    Secded,
    /// AES-XTS ciphertext (encrypted-VM DRAM).
    Xts,
    /// SECDED over the ciphertext words (ECC DRAM under encryption).
    XtsSecded,
}

impl SubstrateKind {
    /// Every substrate, in the paper's presentation order.
    pub const ALL: [SubstrateKind; 4] = [
        SubstrateKind::Plain,
        SubstrateKind::Secded,
        SubstrateKind::Xts,
        SubstrateKind::XtsSecded,
    ];

    /// The cipher used by the encrypted substrates this kind builds.
    pub fn cipher() -> XtsCipher {
        XtsCipher::new(&DATA_KEY, &TWEAK_KEY)
    }

    /// Encodes a weight buffer into a fresh substrate of this kind.
    pub fn store(&self, weights: &[f32]) -> Box<dyn WeightSubstrate> {
        match self {
            SubstrateKind::Plain => Box::new(PlainMemory::store(weights)),
            SubstrateKind::Secded => Box::new(SecdedMemory::protect(weights)),
            SubstrateKind::Xts => Box::new(
                EncryptedMemory::encrypt(weights, Self::cipher())
                    .expect("padded plaintext length is always block-aligned"),
            ),
            SubstrateKind::XtsSecded => Box::new(XtsSecdedMemory::protect(weights, Self::cipher())),
        }
    }

    /// Short name used in report headers and bench labels.
    pub fn name(&self) -> &'static str {
        match self {
            SubstrateKind::Plain => "plain",
            SubstrateKind::Secded => "secded",
            SubstrateKind::Xts => "xts",
            SubstrateKind::XtsSecded => "xts+secded",
        }
    }
}

impl std::fmt::Display for SubstrateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_roundtrips() {
        let w: Vec<f32> = (0..10).map(|i| i as f32 * 0.7 - 3.0).collect();
        for kind in SubstrateKind::ALL {
            let mem = kind.store(&w);
            assert_eq!(mem.len(), w.len(), "{kind}");
            assert_eq!(mem.read_weights(), w, "{kind}");
            assert!(mem.raw_bits() >= w.len() * 32, "{kind}");
        }
    }

    #[test]
    fn overheads_are_ordered() {
        let w = vec![1.0f32; 64];
        let plain = SubstrateKind::Plain.store(&w).storage_overhead();
        let secded = SubstrateKind::Secded.store(&w).storage_overhead();
        let xts = SubstrateKind::Xts.store(&w).storage_overhead();
        let both = SubstrateKind::XtsSecded.store(&w).storage_overhead();
        assert_eq!(plain, 0);
        assert_eq!(secded, 64 * 7 / 8);
        assert_eq!(xts, 0, "64 weights fill whole blocks");
        assert!(both >= secded, "composed substrate pays at least ECC");
    }

    #[test]
    fn display_names_are_stable() {
        let names: Vec<&str> = SubstrateKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["plain", "secded", "xts", "xts+secded"]);
    }
}
