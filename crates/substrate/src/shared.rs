//! Shared, sharded substrate access — the concurrency seam between an
//! online serving plane (many reader threads materializing weights for
//! inference) and a maintenance plane (a scrubber daemon repairing and
//! healing the same storage in place).
//!
//! [`SharedSubstrate`] wraps any [`WeightSubstrate`] behind per-shard
//! `RwLock`s inside an `Arc`, so clones are cheap handles onto the same
//! storage. Reads of one shard are atomic with respect to writes and
//! scrubs of that shard — a reader can never observe a half-applied
//! write-back or a mid-flight scrub (no *torn* plaintext), and lock
//! acquisition orders every access into some serial schedule, so each
//! read equals what that serial schedule would produce (no *stale*
//! plaintext). Cross-shard consistency is deliberately **not**
//! provided: shards exist precisely so the scrubber can sweep one
//! while inference reads another; callers that need a consistent
//! multi-shard snapshot sequence their own quiesce point (the serving
//! layer's certification protocol does exactly that).
//!
//! ## Shard epochs
//!
//! Every shard additionally carries a seqlock-style **epoch counter**:
//! a monotonically increasing version bumped by each operation that can
//! change the shard's raw bits (write-back, raw-bit fault injection,
//! raw-image import, and any scrub pass that corrected words in place).
//! The invariant is: *two reads of the same shard that observe the same
//! epoch observed identical bits*. Readers use
//! [`SharedSubstrate::read_shard_versioned`] to obtain a decode tagged
//! with the exact epoch it was decoded at (the epoch is sampled while
//! the shard read lock is held, so it cannot race a writer), cache the
//! plaintext keyed by that epoch, and revalidate later with a single
//! relaxed atomic load through [`SharedSubstrate::shard_epoch`] — no
//! lock is taken on the revalidation fast path, which is what lets a
//! steady-state inference plane run with zero shard-lock traffic.

use crate::{RawGeometry, ScrubSummary, SubstrateError, WeightSubstrate};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A substrate split into independently locked shards, shareable across
/// threads by cloning the handle.
#[derive(Clone)]
pub struct SharedSubstrate {
    shards: Arc<Vec<RwLock<Box<dyn WeightSubstrate>>>>,
    /// Per-shard data-version counters; bumped (under the shard write
    /// lock) by every operation that may change the shard's raw bits.
    epochs: Arc<Vec<AtomicU64>>,
    /// Prefix sums of per-shard weight counts (`len = shards + 1`).
    weight_offsets: Vec<usize>,
    /// Prefix sums of per-shard raw-bit counts (`len = shards + 1`).
    raw_offsets: Vec<usize>,
}

impl std::fmt::Debug for SharedSubstrate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSubstrate")
            .field("shards", &self.shard_count())
            .field("weights", &self.len())
            .field("raw_bits", &self.raw_bits())
            .finish()
    }
}

impl SharedSubstrate {
    /// Wraps pre-built substrates, one per shard, in shard order.
    ///
    /// Weight and raw-bit index spaces are the concatenation of the
    /// shards' spaces.
    pub fn from_parts(parts: Vec<Box<dyn WeightSubstrate>>) -> Self {
        let mut weight_offsets = Vec::with_capacity(parts.len() + 1);
        let mut raw_offsets = Vec::with_capacity(parts.len() + 1);
        weight_offsets.push(0);
        raw_offsets.push(0);
        for part in &parts {
            weight_offsets.push(weight_offsets.last().unwrap() + part.len());
            raw_offsets.push(raw_offsets.last().unwrap() + part.raw_bits());
        }
        let epochs = (0..parts.len()).map(|_| AtomicU64::new(0)).collect();
        SharedSubstrate {
            shards: Arc::new(parts.into_iter().map(RwLock::new).collect()),
            epochs: Arc::new(epochs),
            weight_offsets,
            raw_offsets,
        }
    }

    /// Splits `weights` into `shards` contiguous, nearly equal chunks
    /// and stores each in a fresh substrate built by `build` (e.g.
    /// `|chunk| SubstrateKind::Secded.store(chunk)`).
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0`.
    pub fn store_with(
        weights: &[f32],
        shards: usize,
        build: impl Fn(&[f32]) -> Box<dyn WeightSubstrate>,
    ) -> Self {
        assert!(shards > 0, "at least one shard required");
        let shards = shards.min(weights.len()).max(1);
        let chunk = weights.len().div_ceil(shards);
        let parts: Vec<Box<dyn WeightSubstrate>> = if weights.is_empty() {
            vec![build(weights)]
        } else {
            weights.chunks(chunk).map(build).collect()
        };
        Self::from_parts(parts)
    }

    /// Total stored weights across shards.
    pub fn len(&self) -> usize {
        *self.weight_offsets.last().unwrap()
    }

    /// True when no weights are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of independently locked shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total raw (fault-surface) bits across shards.
    pub fn raw_bits(&self) -> usize {
        *self.raw_offsets.last().unwrap()
    }

    /// The global weight-index range `[start, end)` stored by `shard`.
    pub fn shard_weight_range(&self, shard: usize) -> (usize, usize) {
        (self.weight_offsets[shard], self.weight_offsets[shard + 1])
    }

    /// The global raw-bit range `[start, end)` owned by `shard`.
    pub fn shard_raw_range(&self, shard: usize) -> (usize, usize) {
        (self.raw_offsets[shard], self.raw_offsets[shard + 1])
    }

    /// The shard holding global weight index `weight`.
    ///
    /// # Panics
    ///
    /// Panics when `weight >= len()`.
    pub fn shard_of_weight(&self, weight: usize) -> usize {
        assert!(weight < self.len(), "weight {weight} out of range");
        self.weight_offsets.partition_point(|&o| o <= weight) - 1
    }

    /// Current epoch of `shard`: a single relaxed-cost atomic load, no
    /// lock taken. Equal epochs across two observations guarantee the
    /// shard's raw bits were identical at both (writers bump under the
    /// shard's write lock). This is the cache-revalidation fast path.
    pub fn shard_epoch(&self, shard: usize) -> u64 {
        self.epochs[shard].load(Ordering::Acquire)
    }

    /// Sum of all shard epochs — a cheap monotone counter of raw-bit
    /// mutations (write-backs, fault injections, scrub corrections)
    /// across the whole substrate, exported as the substrate-plane
    /// `epoch_total` metric.
    pub fn epoch_total(&self) -> u64 {
        self.epochs.iter().map(|e| e.load(Ordering::Acquire)).sum()
    }

    /// Bumps `shard`'s epoch. Must be called with the shard's write
    /// lock held (all internal callers do); the bump-before-unlock
    /// discipline is what makes "same epoch ⇒ same bits" hold.
    fn bump_epoch(&self, shard: usize) {
        self.epochs[shard].fetch_add(1, Ordering::Release);
    }

    /// Decodes one shard's plaintext weights (atomic per shard).
    pub fn read_shard(&self, shard: usize) -> Vec<f32> {
        self.shards[shard]
            .read()
            .expect("lock poisoned")
            .read_weights()
    }

    /// Decodes one shard's plaintext weights together with the epoch
    /// the decode observed. The epoch is sampled while the shard read
    /// lock is held, so the pair is exact: the returned plaintext is
    /// precisely the decode of the shard's bits at that epoch — never
    /// torn, never tagged with a neighbouring version.
    pub fn read_shard_versioned(&self, shard: usize) -> (Vec<f32>, u64) {
        let guard = self.shards[shard].read().expect("lock poisoned");
        let epoch = self.epochs[shard].load(Ordering::Acquire);
        (guard.read_weights(), epoch)
    }

    /// Decodes one shard's plaintext weights directly into `out`,
    /// avoiding the per-call `Vec` of
    /// [`read_shard`](SharedSubstrate::read_shard) where the shard's
    /// substrate supports it (plain storage is a straight copy).
    ///
    /// # Panics
    ///
    /// Panics when `out.len()` differs from the shard's weight count.
    pub fn read_shard_into(&self, shard: usize, out: &mut [f32]) {
        self.shards[shard]
            .read()
            .expect("lock poisoned")
            .read_weights_into(out);
    }

    /// [`read_shard_into`](SharedSubstrate::read_shard_into), returning
    /// the epoch the decode observed (sampled under the read lock, like
    /// [`read_shard_versioned`](SharedSubstrate::read_shard_versioned)).
    ///
    /// # Panics
    ///
    /// Panics when `out.len()` differs from the shard's weight count.
    pub fn read_shard_into_versioned(&self, shard: usize, out: &mut [f32]) -> u64 {
        let guard = self.shards[shard].read().expect("lock poisoned");
        let epoch = self.epochs[shard].load(Ordering::Acquire);
        guard.read_weights_into(out);
        epoch
    }

    /// Decodes all shards in shard order. Each shard read is atomic;
    /// the concatenation is *per-shard* consistent, not a global
    /// snapshot.
    pub fn read_weights(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            out.extend(shard.read().expect("lock poisoned").read_weights());
        }
        out
    }

    /// Replaces one shard's weights under its write lock.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::LengthMismatch`] when the length differs from
    /// the shard's stored count.
    pub fn write_shard(&self, shard: usize, weights: &[f32]) -> Result<(), SubstrateError> {
        let mut guard = self.shards[shard].write().expect("lock poisoned");
        let result = guard.write_weights(weights);
        if result.is_ok() {
            self.bump_epoch(shard);
        }
        result
    }

    /// Replaces every shard's weights from one contiguous buffer
    /// (shard-by-shard; concurrent readers see old or new weights per
    /// shard, never a torn shard).
    ///
    /// # Errors
    ///
    /// [`SubstrateError::LengthMismatch`] when `weights.len()` differs
    /// from [`len`](SharedSubstrate::len); no shard is modified then.
    pub fn write_weights(&self, weights: &[f32]) -> Result<(), SubstrateError> {
        if weights.len() != self.len() {
            return Err(SubstrateError::LengthMismatch {
                expected: self.len(),
                got: weights.len(),
            });
        }
        for (i, _) in self.shards.iter().enumerate() {
            let (lo, hi) = (self.weight_offsets[i], self.weight_offsets[i + 1]);
            self.write_shard(i, &weights[lo..hi])?;
        }
        Ok(())
    }

    /// Scrubs one shard in place under its write lock. The shard epoch
    /// is bumped only when the pass corrected words (a clean sweep
    /// leaves the bits — and hence any epoch-tagged plaintext cache —
    /// untouched, so periodic scrubbing costs readers nothing).
    pub fn scrub_shard(&self, shard: usize) -> ScrubSummary {
        let mut guard = self.shards[shard].write().expect("lock poisoned");
        let summary = guard.scrub();
        if summary.corrected > 0 {
            self.bump_epoch(shard);
        }
        summary
    }

    /// Scrubs every shard (shard-by-shard, never blocking readers of
    /// other shards) and sums the statistics.
    pub fn scrub(&self) -> ScrubSummary {
        let mut total = ScrubSummary::default();
        for i in 0..self.shards.len() {
            let s = self.scrub_shard(i);
            total.corrected += s.corrected;
            total.uncorrectable += s.uncorrectable;
        }
        total
    }

    /// Raw-space geometry of the stored encoding (shard 0's; all shards
    /// share one encoding by construction).
    pub fn raw_geometry(&self) -> RawGeometry {
        self.shards[0].read().expect("lock poisoned").raw_geometry()
    }

    /// Reads one bit of the global raw representation under the owning
    /// shard's read lock (no epoch bump — observation, not mutation).
    /// Stuck-at campaigns use this to re-assert a bit only when a scrub
    /// actually corrected it away.
    ///
    /// # Panics
    ///
    /// Panics when `bit >= raw_bits()`.
    pub fn raw_bit(&self, bit: usize) -> bool {
        assert!(bit < self.raw_bits(), "raw bit {bit} out of range");
        let shard = self.raw_offsets.partition_point(|&o| o <= bit) - 1;
        let guard = self.shards[shard].read().expect("lock poisoned");
        guard.raw_bit(bit - self.raw_offsets[shard])
    }

    /// Flips one bit of the global raw representation (fault
    /// injection), serialized with reads/scrubs of the owning shard.
    ///
    /// # Panics
    ///
    /// Panics when `bit >= raw_bits()`.
    pub fn flip_raw_bit(&self, bit: usize) {
        assert!(bit < self.raw_bits(), "raw bit {bit} out of range");
        let shard = self.raw_offsets.partition_point(|&o| o <= bit) - 1;
        let mut guard = self.shards[shard].write().expect("lock poisoned");
        guard.flip_raw_bit(bit - self.raw_offsets[shard]);
        // Faults change bits like any other writer: the bump is what
        // keeps epoch-tagged caches honest about corrupted storage
        // (serving must observe the corruption, not a stale-clean copy).
        self.bump_epoch(shard);
    }

    /// Serializes one shard's raw image under its read lock — the
    /// persistence snapshot path (see [`WeightSubstrate::export_raw`]).
    pub fn export_shard_raw(&self, shard: usize) -> Vec<u8> {
        self.shards[shard]
            .read()
            .expect("lock poisoned")
            .export_raw()
    }

    /// Replaces one shard's raw image under its write lock — the
    /// peer-repair path: a healthy replica's certified page bytes
    /// overwrite this shard bit-for-bit, atomically with respect to
    /// readers and scrubs of the shard (see
    /// [`WeightSubstrate::import_raw`]).
    ///
    /// # Errors
    ///
    /// Propagates the shard's [`SubstrateError`] (wrong image length,
    /// backing-store failure).
    pub fn import_shard_raw(&self, shard: usize, raw: &[u8]) -> Result<(), SubstrateError> {
        let mut guard = self.shards[shard].write().expect("lock poisoned");
        let result = guard.import_raw(raw);
        if result.is_ok() {
            self.bump_epoch(shard);
        }
        result
    }

    /// Flushes one shard's buffered state to its backing store (a
    /// no-op for in-memory shards).
    ///
    /// # Errors
    ///
    /// Propagates the shard's [`SubstrateError`].
    pub fn flush_shard(&self, shard: usize) -> Result<(), SubstrateError> {
        self.shards[shard].write().expect("lock poisoned").flush()
    }

    /// Flushes every shard (shard-by-shard, like
    /// [`scrub`](SharedSubstrate::scrub)).
    ///
    /// # Errors
    ///
    /// Propagates the first failing shard's [`SubstrateError`].
    pub fn flush(&self) -> Result<(), SubstrateError> {
        for i in 0..self.shards.len() {
            self.flush_shard(i)?;
        }
        Ok(())
    }

    /// Total storage overhead beyond 4 bytes per weight, in bytes.
    pub fn storage_overhead(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("lock poisoned").storage_overhead())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SubstrateKind;

    fn weights(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32 * 0.5 - 8.0).collect()
    }

    #[test]
    fn sharded_roundtrip_matches_flat() {
        let w = weights(37);
        for kind in SubstrateKind::ALL {
            let shared = SharedSubstrate::store_with(&w, 4, |c| kind.store(c));
            assert_eq!(shared.shard_count(), 4, "{kind}");
            assert_eq!(shared.len(), 37, "{kind}");
            assert_eq!(shared.read_weights(), w, "{kind}");
        }
    }

    #[test]
    fn shard_indexing_is_contiguous() {
        let w = weights(10);
        let shared = SharedSubstrate::store_with(&w, 3, |c| SubstrateKind::Plain.store(c));
        // Chunks of ceil(10/3) = 4: [0..4), [4..8), [8..10).
        assert_eq!(shared.shard_of_weight(0), 0);
        assert_eq!(shared.shard_of_weight(3), 0);
        assert_eq!(shared.shard_of_weight(4), 1);
        assert_eq!(shared.shard_of_weight(9), 2);
        assert_eq!(shared.read_shard(2), w[8..].to_vec());
    }

    #[test]
    fn writes_and_scrubs_are_per_shard() {
        let w = weights(16);
        let shared = SharedSubstrate::store_with(&w, 4, |c| SubstrateKind::Secded.store(c));
        // Corrupt one raw bit of shard 0's space; scrub repairs it.
        shared.flip_raw_bit(5);
        let summary = shared.scrub_shard(0);
        assert_eq!(summary.corrected, 1);
        assert_eq!(shared.read_weights(), w);
        // Whole-buffer write-back round-trips.
        let w2 = weights(16).iter().map(|v| v + 1.0).collect::<Vec<_>>();
        shared.write_weights(&w2).unwrap();
        assert_eq!(shared.read_weights(), w2);
        assert!(shared.write_weights(&w2[..3]).is_err());
        assert!(shared.write_shard(1, &w2[..1]).is_err());
    }

    #[test]
    fn clones_share_storage() {
        let w = weights(8);
        let a = SharedSubstrate::store_with(&w, 2, |c| SubstrateKind::Plain.store(c));
        let b = a.clone();
        let patched: Vec<f32> = w.iter().map(|v| v * 2.0).collect();
        a.write_shard(0, &patched[..4]).unwrap();
        assert_eq!(b.read_shard(0), patched[..4].to_vec());
        assert_eq!(b.read_shard(1), w[4..].to_vec());
    }

    #[test]
    fn shard_import_restores_donor_bits() {
        let w = weights(24);
        for kind in SubstrateKind::ALL {
            let donor = SharedSubstrate::store_with(&w, 3, |c| kind.store(c));
            let damaged = SharedSubstrate::store_with(&w, 3, |c| kind.store(c));
            let (lo, _) = damaged.shard_raw_range(1);
            damaged.flip_raw_bit(lo + 2);
            damaged.flip_raw_bit(lo + 9);
            assert_ne!(damaged.export_shard_raw(1), donor.export_shard_raw(1));
            damaged
                .import_shard_raw(1, &donor.export_shard_raw(1))
                .unwrap();
            assert_eq!(damaged.export_shard_raw(1), donor.export_shard_raw(1));
            assert_eq!(damaged.read_weights(), w, "{kind}");
            assert!(damaged.import_shard_raw(0, &[1, 2, 3]).is_err(), "{kind}");
        }
    }

    #[test]
    fn overhead_sums_shards() {
        let w = weights(64);
        let shared = SharedSubstrate::store_with(&w, 8, |c| SubstrateKind::Secded.store(c));
        assert_eq!(shared.storage_overhead(), 64 * 7 / 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_bounds_checked() {
        let shared = SharedSubstrate::store_with(&weights(2), 1, |c| SubstrateKind::Plain.store(c));
        shared.flip_raw_bit(64);
    }

    #[test]
    fn epochs_track_data_changes() {
        let w = weights(16);
        let shared = SharedSubstrate::store_with(&w, 2, |c| SubstrateKind::Secded.store(c));
        assert_eq!(shared.shard_epoch(0), 0);
        assert_eq!(shared.shard_epoch(1), 0);

        // A fault bumps the owning shard only.
        shared.flip_raw_bit(3);
        assert_eq!(shared.shard_epoch(0), 1);
        assert_eq!(shared.shard_epoch(1), 0);

        // A correcting scrub bumps; a clean scrub does not.
        assert_eq!(shared.scrub_shard(0).corrected, 1);
        assert_eq!(shared.shard_epoch(0), 2);
        assert!(shared.scrub_shard(0).is_clean());
        assert_eq!(shared.shard_epoch(0), 2);

        // Write-back and raw import bump; failed writes do not.
        shared.write_shard(1, &w[8..]).unwrap();
        assert_eq!(shared.shard_epoch(1), 1);
        assert!(shared.write_shard(1, &w[..3]).is_err());
        assert_eq!(shared.shard_epoch(1), 1);
        let image = shared.export_shard_raw(1);
        shared.import_shard_raw(1, &image).unwrap();
        assert_eq!(shared.shard_epoch(1), 2);
        assert!(shared.import_shard_raw(1, &[0u8; 3]).is_err());
        assert_eq!(shared.shard_epoch(1), 2);
    }

    #[test]
    fn versioned_reads_report_the_observed_epoch() {
        let w = weights(12);
        for kind in SubstrateKind::ALL {
            let shared = SharedSubstrate::store_with(&w, 3, |c| kind.store(c));
            let (seen, epoch) = shared.read_shard_versioned(1);
            assert_eq!(epoch, 0, "{kind}");
            assert_eq!(seen, shared.read_shard(1), "{kind}");

            let (lo, hi) = shared.shard_weight_range(1);
            let mut buf = vec![0.0f32; hi - lo];
            let epoch = shared.read_shard_into_versioned(1, &mut buf);
            assert_eq!(epoch, 0, "{kind}");
            assert_eq!(buf, seen, "{kind}");

            let (raw_lo, _) = shared.shard_raw_range(1);
            shared.flip_raw_bit(raw_lo);
            let (_, epoch) = shared.read_shard_versioned(1);
            assert_eq!(epoch, 1, "{kind}");

            shared.read_shard_into(1, &mut buf);
            assert_eq!(buf, shared.read_shard(1), "{kind}");
        }
    }
}
