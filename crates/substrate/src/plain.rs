//! Unprotected plaintext storage: the "no recovery" baseline substrate
//! and the blanket [`WeightSubstrate`] impls for bare `f32` buffers that
//! let the fault injectors run directly on model parameter slices.

use crate::{RawGeometry, ScrubSummary, SubstrateError, WeightSubstrate};

/// Plain storage groups 4 data words (a 16-byte DRAM beat) per
/// geometry row.
const PLAIN_GEOMETRY: RawGeometry = RawGeometry {
    word_bits: 32,
    words_per_row: 4,
};

/// Weights stored as raw `f32` words in unprotected DRAM.
///
/// The raw representation *is* the plaintext: 32 raw bits per weight,
/// no code layer, scrub is a no-op, zero storage overhead.
#[derive(Debug, Clone, PartialEq)]
pub struct PlainMemory {
    words: Vec<f32>,
}

impl PlainMemory {
    /// Stores a copy of the weight buffer.
    pub fn store(weights: &[f32]) -> Self {
        PlainMemory {
            words: weights.to_vec(),
        }
    }

    /// Direct view of the stored words.
    pub fn data(&self) -> &[f32] {
        &self.words
    }
}

/// Shared raw-image export for anything stored as bare `f32` words:
/// the little-endian word bytes.
fn export_f32_raw(words: &[f32]) -> Vec<u8> {
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

/// Shared raw-image decode for anything stored as bare `f32` words.
fn import_f32_raw(expected: usize, raw: &[u8]) -> Result<Vec<f32>, SubstrateError> {
    if raw.len() != expected * 4 {
        return Err(SubstrateError::Backend(format!(
            "raw image of {} bytes cannot hold {expected} plain weights",
            raw.len()
        )));
    }
    Ok(raw
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
        .collect())
}

/// Shared raw-bit flip for anything stored as bare `f32` words.
fn flip_f32_bit(words: &mut [f32], bit: usize) {
    let total = words.len() * 32;
    assert!(bit < total, "raw bit {bit} out of range ({total} bits)");
    let word = bit / 32;
    words[word] = f32::from_bits(words[word].to_bits() ^ (1u32 << (bit % 32)));
}

/// Shared raw-bit read for anything stored as bare `f32` words.
fn read_f32_bit(words: &[f32], bit: usize) -> bool {
    let total = words.len() * 32;
    assert!(bit < total, "raw bit {bit} out of range ({total} bits)");
    (words[bit / 32].to_bits() >> (bit % 32)) & 1 == 1
}

/// Shared sparse write for anything stored as bare `f32` words: plain
/// storage has no code layer, so a sparse write is a direct element
/// store.
fn write_f32_sparse(words: &mut [f32], updates: &[(usize, f32)]) -> Result<(), SubstrateError> {
    for &(idx, value) in updates {
        if idx >= words.len() {
            return Err(SubstrateError::LengthMismatch {
                expected: words.len(),
                got: idx + 1,
            });
        }
        words[idx] = value;
    }
    Ok(())
}

impl WeightSubstrate for PlainMemory {
    fn label(&self) -> &'static str {
        "plain DRAM"
    }

    fn len(&self) -> usize {
        self.words.len()
    }

    fn raw_bits(&self) -> usize {
        self.words.len() * 32
    }

    fn raw_word_of_bit(&self, bit: usize) -> usize {
        bit / 32
    }

    fn raw_geometry(&self) -> RawGeometry {
        PLAIN_GEOMETRY
    }

    fn raw_bit(&self, bit: usize) -> bool {
        read_f32_bit(&self.words, bit)
    }

    fn flip_raw_bit(&mut self, bit: usize) {
        flip_f32_bit(&mut self.words, bit);
    }

    fn read_weights(&self) -> Vec<f32> {
        self.words.clone()
    }

    fn read_weights_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.words.len(), "read_weights_into length");
        out.copy_from_slice(&self.words);
    }

    fn write_weights(&mut self, weights: &[f32]) -> Result<(), SubstrateError> {
        if weights.len() != self.words.len() {
            return Err(SubstrateError::LengthMismatch {
                expected: self.words.len(),
                got: weights.len(),
            });
        }
        self.words.copy_from_slice(weights);
        Ok(())
    }

    fn write_weights_sparse(&mut self, updates: &[(usize, f32)]) -> Result<(), SubstrateError> {
        write_f32_sparse(&mut self.words, updates)
    }

    fn scrub(&mut self) -> ScrubSummary {
        ScrubSummary::default()
    }

    fn export_raw(&self) -> Vec<u8> {
        export_f32_raw(self.read_weights().as_slice())
    }

    fn import_raw(&mut self, raw: &[u8]) -> Result<(), SubstrateError> {
        self.words = import_f32_raw(self.words.len(), raw)?;
        Ok(())
    }

    fn storage_overhead(&self) -> usize {
        0
    }
}

/// A bare weight slice is itself a plain substrate: this is what makes
/// the substrate-generic injectors drop-in replacements for the old
/// `&mut [f32]` signatures (`inject_rber(params.data_mut(), ..)`).
impl WeightSubstrate for [f32] {
    fn label(&self) -> &'static str {
        "plain DRAM"
    }

    fn len(&self) -> usize {
        <[f32]>::len(self)
    }

    fn raw_bits(&self) -> usize {
        <[f32]>::len(self) * 32
    }

    fn raw_word_of_bit(&self, bit: usize) -> usize {
        bit / 32
    }

    fn raw_geometry(&self) -> RawGeometry {
        PLAIN_GEOMETRY
    }

    fn raw_bit(&self, bit: usize) -> bool {
        read_f32_bit(self, bit)
    }

    fn flip_raw_bit(&mut self, bit: usize) {
        flip_f32_bit(self, bit);
    }

    fn read_weights(&self) -> Vec<f32> {
        self.to_vec()
    }

    fn read_weights_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), <[f32]>::len(self), "read_weights_into length");
        out.copy_from_slice(self);
    }

    fn write_weights(&mut self, weights: &[f32]) -> Result<(), SubstrateError> {
        if weights.len() != <[f32]>::len(self) {
            return Err(SubstrateError::LengthMismatch {
                expected: <[f32]>::len(self),
                got: weights.len(),
            });
        }
        self.copy_from_slice(weights);
        Ok(())
    }

    fn write_weights_sparse(&mut self, updates: &[(usize, f32)]) -> Result<(), SubstrateError> {
        write_f32_sparse(self, updates)
    }

    fn scrub(&mut self) -> ScrubSummary {
        ScrubSummary::default()
    }

    fn export_raw(&self) -> Vec<u8> {
        export_f32_raw(self.read_weights().as_slice())
    }

    fn import_raw(&mut self, raw: &[u8]) -> Result<(), SubstrateError> {
        let words = import_f32_raw(<[f32]>::len(self), raw)?;
        self.copy_from_slice(&words);
        Ok(())
    }

    fn storage_overhead(&self) -> usize {
        0
    }
}

/// Owned buffers delegate to the slice impl (keeps `&mut vec` call
/// sites working with the generic injectors).
impl WeightSubstrate for Vec<f32> {
    fn label(&self) -> &'static str {
        "plain DRAM"
    }

    fn len(&self) -> usize {
        <[f32]>::len(self)
    }

    fn raw_bits(&self) -> usize {
        <[f32]>::len(self) * 32
    }

    fn raw_word_of_bit(&self, bit: usize) -> usize {
        bit / 32
    }

    fn raw_geometry(&self) -> RawGeometry {
        PLAIN_GEOMETRY
    }

    fn raw_bit(&self, bit: usize) -> bool {
        read_f32_bit(self, bit)
    }

    fn flip_raw_bit(&mut self, bit: usize) {
        flip_f32_bit(self, bit);
    }

    fn read_weights(&self) -> Vec<f32> {
        self.clone()
    }

    fn read_weights_into(&self, out: &mut [f32]) {
        self.as_slice().read_weights_into(out);
    }

    fn write_weights(&mut self, weights: &[f32]) -> Result<(), SubstrateError> {
        self.as_mut_slice().write_weights(weights)
    }

    fn write_weights_sparse(&mut self, updates: &[(usize, f32)]) -> Result<(), SubstrateError> {
        self.as_mut_slice().write_weights_sparse(updates)
    }

    fn scrub(&mut self) -> ScrubSummary {
        ScrubSummary::default()
    }

    fn export_raw(&self) -> Vec<u8> {
        export_f32_raw(self.read_weights().as_slice())
    }

    fn import_raw(&mut self, raw: &[u8]) -> Result<(), SubstrateError> {
        self.as_mut_slice().import_raw(raw)
    }

    fn storage_overhead(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32 * 0.25 - 2.0).collect()
    }

    #[test]
    fn roundtrip_and_overhead() {
        let w = weights(7);
        let mut mem = PlainMemory::store(&w);
        assert_eq!(mem.len(), 7);
        assert_eq!(mem.raw_bits(), 7 * 32);
        assert_eq!(mem.read_weights(), w);
        assert_eq!(mem.storage_overhead(), 0);
        assert!(mem.scrub().is_clean());
        assert_eq!(mem.read_weights(), w, "scrub is a no-op");
    }

    #[test]
    fn flip_changes_exactly_one_word() {
        let w = weights(4);
        let mut mem = PlainMemory::store(&w);
        mem.flip_raw_bit(32 + 5); // word 1, bit 5
        assert_eq!(mem.raw_word_of_bit(32 + 5), 1);
        let seen = mem.read_weights();
        assert_eq!(seen[1].to_bits(), w[1].to_bits() ^ (1 << 5));
        for i in [0, 2, 3] {
            assert_eq!(seen[i], w[i]);
        }
    }

    #[test]
    fn write_back_heals() {
        let w = weights(3);
        let mut mem = PlainMemory::store(&w);
        mem.flip_raw_bit(0);
        mem.write_weights(&w).unwrap();
        assert_eq!(mem.read_weights(), w);
        assert!(matches!(
            mem.write_weights(&weights(4)),
            Err(SubstrateError::LengthMismatch {
                expected: 3,
                got: 4
            })
        ));
    }

    #[test]
    fn slice_impl_matches_plain_memory() {
        let mut v = weights(5);
        let mut mem = PlainMemory::store(&v);
        let slice: &mut [f32] = &mut v;
        slice.flip_raw_bit(77);
        mem.flip_raw_bit(77);
        assert_eq!(slice.read_weights(), mem.read_weights());
        assert_eq!(slice.raw_bits(), mem.raw_bits());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_bounds_checked() {
        PlainMemory::store(&weights(1)).flip_raw_bit(32);
    }
}
