//! [`WeightSubstrate`] adaptation of the SECDED-per-word memory from
//! `milr_ecc`: the paper's ECC-DRAM baseline, with 39 raw bits per
//! stored weight and a scrub that behaves like an ECC memory-controller
//! sweep.

use crate::{RawGeometry, ScrubSummary, SubstrateError, WeightSubstrate};
use milr_ecc::{Secded, SecdedMemory};

/// SECDED rows group 4 code words, mirroring the 4-word DRAM beat of
/// the plain substrate but at 39 raw bits per word.
const SECDED_GEOMETRY: RawGeometry = RawGeometry {
    word_bits: Secded::CODE_BITS as usize,
    words_per_row: 4,
};

impl WeightSubstrate for SecdedMemory {
    fn label(&self) -> &'static str {
        "SECDED DRAM"
    }

    fn len(&self) -> usize {
        SecdedMemory::len(self)
    }

    fn raw_bits(&self) -> usize {
        SecdedMemory::len(self) * Secded::CODE_BITS as usize
    }

    fn raw_word_of_bit(&self, bit: usize) -> usize {
        bit / Secded::CODE_BITS as usize
    }

    fn raw_geometry(&self) -> RawGeometry {
        SECDED_GEOMETRY
    }

    fn raw_bit(&self, bit: usize) -> bool {
        assert!(bit < self.raw_bits(), "raw bit {bit} out of range");
        let per = Secded::CODE_BITS as usize;
        (self.words()[bit / per] >> (bit % per)) & 1 == 1
    }

    fn flip_raw_bit(&mut self, bit: usize) {
        assert!(bit < self.raw_bits(), "raw bit {bit} out of range");
        let per = Secded::CODE_BITS as usize;
        self.flip_bit(bit / per, (bit % per) as u32);
    }

    fn read_weights(&self) -> Vec<f32> {
        self.read_all()
    }

    fn read_weights_into(&self, out: &mut [f32]) {
        assert_eq!(
            out.len(),
            SecdedMemory::len(self),
            "read_weights_into buffer of {} cannot hold {} weights",
            out.len(),
            SecdedMemory::len(self)
        );
        self.read_all_into(out);
    }

    fn write_weights(&mut self, weights: &[f32]) -> Result<(), SubstrateError> {
        if weights.len() != SecdedMemory::len(self) {
            return Err(SubstrateError::LengthMismatch {
                expected: SecdedMemory::len(self),
                got: weights.len(),
            });
        }
        *self = SecdedMemory::protect(weights);
        Ok(())
    }

    fn write_weights_sparse(&mut self, updates: &[(usize, f32)]) -> Result<(), SubstrateError> {
        // Re-encode only the touched words: raw-space error state on
        // every *other* word must survive a sparse write-back.
        let len = SecdedMemory::len(self);
        for &(idx, value) in updates {
            if idx >= len {
                return Err(SubstrateError::LengthMismatch {
                    expected: len,
                    got: idx + 1,
                });
            }
            self.words_mut()[idx] = Secded::encode(value.to_bits());
        }
        Ok(())
    }

    fn scrub(&mut self) -> ScrubSummary {
        // The allocation-free controller sweep: decoded weights are not
        // needed here, only the repair statistics.
        let report = self.scrub_in_place();
        ScrubSummary {
            corrected: report.corrected,
            uncorrectable: report.uncorrectable,
        }
    }

    fn export_raw(&self) -> Vec<u8> {
        self.words().iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    fn import_raw(&mut self, raw: &[u8]) -> Result<(), SubstrateError> {
        if raw.len() != SecdedMemory::len(self) * 8 {
            return Err(SubstrateError::Backend(format!(
                "raw image of {} bytes cannot hold {} SECDED words",
                raw.len(),
                SecdedMemory::len(self)
            )));
        }
        let words = raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        *self = SecdedMemory::from_words(words);
        Ok(())
    }

    fn storage_overhead(&self) -> usize {
        self.overhead_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32 * 0.125 - 4.0).collect()
    }

    #[test]
    fn single_flip_is_corrected_by_scrub() {
        let w = weights(16);
        let mut mem = SecdedMemory::protect(&w);
        assert_eq!(mem.raw_bits(), 16 * 39);
        mem.flip_raw_bit(3 * 39 + 11);
        assert_eq!(mem.raw_word_of_bit(3 * 39 + 11), 3);
        let summary = WeightSubstrate::scrub(&mut mem);
        assert_eq!(summary.corrected, 1);
        assert_eq!(summary.uncorrectable, 0);
        assert_eq!(mem.read_weights(), w);
    }

    #[test]
    fn double_flip_is_uncorrectable() {
        let w = weights(8);
        let mut mem = SecdedMemory::protect(&w);
        mem.flip_raw_bit(5 * 39 + 1);
        mem.flip_raw_bit(5 * 39 + 30);
        let summary = WeightSubstrate::scrub(&mut mem);
        assert_eq!(summary.uncorrectable, 1);
        assert_ne!(mem.read_weights()[5], w[5]);
    }

    #[test]
    fn write_back_reprotects() {
        let w = weights(4);
        let mut mem = SecdedMemory::protect(&w);
        mem.flip_raw_bit(0);
        mem.flip_raw_bit(1); // uncorrectable
        WeightSubstrate::write_weights(&mut mem, &w).unwrap();
        assert!(WeightSubstrate::scrub(&mut mem).is_clean());
        assert_eq!(mem.read_weights(), w);
    }

    #[test]
    fn overhead_is_seven_bits_per_word() {
        let mem = SecdedMemory::protect(&weights(64));
        assert_eq!(WeightSubstrate::storage_overhead(&mem), 64 * 7 / 8);
    }
}
