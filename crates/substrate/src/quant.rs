//! Quantized weight substrates: int8 and IEEE half-precision page
//! encodings, plain and SECDED-composed.
//!
//! These are first-class [`WeightSubstrate`] arms, not a preprocessing
//! step: weights are *stored* on the quantized grid (1 or 2 bytes per
//! parameter instead of 4), faults flip bits of the quantized raw image,
//! and every raw-space operation (inject / export / import / scrub)
//! works on the quantized words. Reads dequantize on the fly — each
//! grid point is exactly representable in f32 (the int8 scale is a
//! power of two; every binary16 value is an f32 value), so a stored
//! weight round-trips bit-for-bit and MILR's recovery can snap solver
//! output onto the grid **exactly**, bypassing the f32 ulp search (see
//! `milr_ecc::ring`).
//!
//! The SECDED-composed variants pack 4 quantized bytes (4 int8 or 2
//! fp16 weights) into one 32-bit word under a (39,32) code word — ECC
//! DRAM over quantized pages. A double error garbles up to 4 (int8) or
//! 2 (fp16) weights at once; MILR heals them in plaintext space.

use crate::{RawGeometry, ScrubSummary, SubstrateError, WeightSubstrate};
use milr_ecc::ring::{f16_bits_to_f32, f32_to_f16_bits, int8_quantize, int8_value};
use milr_ecc::{DecodeOutcome, Secded};

/// Bytes per 32-bit word of the SECDED-composed quantized substrates.
const WORD_BYTES: usize = 4;

/// The quantized page encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantFormat {
    /// Signed 8-bit lattice `q · 2⁻⁶` (see `milr_ecc::ring`).
    Int8,
    /// IEEE 754 binary16 (half precision).
    Fp16,
}

impl QuantFormat {
    /// Stored bytes per weight (1 int8, 2 fp16).
    pub fn bytes_per_weight(&self) -> usize {
        match self {
            QuantFormat::Int8 => 1,
            QuantFormat::Fp16 => 2,
        }
    }

    /// Encodes one weight into its stored bytes (`bytes_per_weight`
    /// long), snapping to the grid.
    pub fn encode(&self, v: f32, out: &mut [u8]) {
        match self {
            QuantFormat::Int8 => out[0] = int8_quantize(v) as u8,
            QuantFormat::Fp16 => out.copy_from_slice(&f32_to_f16_bits(v).to_le_bytes()),
        }
    }

    /// Decodes one weight from its stored bytes.
    pub fn decode(&self, bytes: &[u8]) -> f32 {
        match self {
            QuantFormat::Int8 => int8_value(bytes[0] as i8),
            QuantFormat::Fp16 => f16_bits_to_f32(u16::from_le_bytes([bytes[0], bytes[1]])),
        }
    }

    /// Snaps a weight to the nearest grid point (what a store-then-read
    /// round trip returns).
    pub fn snap(&self, v: f32) -> f32 {
        match self {
            QuantFormat::Int8 => int8_value(int8_quantize(v)),
            QuantFormat::Fp16 => f16_bits_to_f32(f32_to_f16_bits(v)),
        }
    }

    /// Raw geometry of the plain (un-coded) quantized substrate: word =
    /// one weight, rows of a 16-byte DRAM beat.
    fn plain_geometry(&self) -> RawGeometry {
        match self {
            QuantFormat::Int8 => RawGeometry {
                word_bits: 8,
                words_per_row: 16,
            },
            QuantFormat::Fp16 => RawGeometry {
                word_bits: 16,
                words_per_row: 8,
            },
        }
    }

    fn plain_label(&self) -> &'static str {
        match self {
            QuantFormat::Int8 => "int8 DRAM",
            QuantFormat::Fp16 => "fp16 DRAM",
        }
    }

    fn secded_label(&self) -> &'static str {
        match self {
            QuantFormat::Int8 => "int8 + SECDED DRAM",
            QuantFormat::Fp16 => "fp16 + SECDED DRAM",
        }
    }
}

/// Quantized weights in unprotected DRAM: 1 (int8) or 2 (fp16) raw
/// bytes per weight, no code layer. Scrub is a no-op; every raw bit
/// lands in exactly one weight's quantized representation.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMemory {
    format: QuantFormat,
    bytes: Vec<u8>,
}

impl QuantMemory {
    /// Quantizes a weight buffer into fresh storage.
    pub fn store(format: QuantFormat, weights: &[f32]) -> Self {
        let bpw = format.bytes_per_weight();
        let mut bytes = vec![0u8; weights.len() * bpw];
        for (chunk, &w) in bytes.chunks_exact_mut(bpw).zip(weights) {
            format.encode(w, chunk);
        }
        QuantMemory { format, bytes }
    }

    /// Reconstructs a memory from its raw image (the persistence path).
    ///
    /// # Panics
    ///
    /// Panics when the image length is not a whole number of weights.
    pub fn from_bytes(format: QuantFormat, bytes: Vec<u8>) -> Self {
        assert!(
            bytes.len().is_multiple_of(format.bytes_per_weight()),
            "raw image of {} bytes is not whole {:?} weights",
            bytes.len(),
            format
        );
        QuantMemory { format, bytes }
    }

    /// The page encoding.
    pub fn format(&self) -> QuantFormat {
        self.format
    }
}

impl WeightSubstrate for QuantMemory {
    fn label(&self) -> &'static str {
        self.format.plain_label()
    }

    fn len(&self) -> usize {
        self.bytes.len() / self.format.bytes_per_weight()
    }

    fn raw_bits(&self) -> usize {
        self.bytes.len() * 8
    }

    fn raw_word_of_bit(&self, bit: usize) -> usize {
        bit / (self.format.bytes_per_weight() * 8)
    }

    fn raw_geometry(&self) -> RawGeometry {
        self.format.plain_geometry()
    }

    fn raw_bit(&self, bit: usize) -> bool {
        assert!(bit < self.raw_bits(), "raw bit {bit} out of range");
        (self.bytes[bit / 8] >> (bit % 8)) & 1 == 1
    }

    fn flip_raw_bit(&mut self, bit: usize) {
        assert!(bit < self.raw_bits(), "raw bit {bit} out of range");
        self.bytes[bit / 8] ^= 1 << (bit % 8);
    }

    fn read_weights(&self) -> Vec<f32> {
        let bpw = self.format.bytes_per_weight();
        self.bytes
            .chunks_exact(bpw)
            .map(|c| self.format.decode(c))
            .collect()
    }

    fn read_weights_into(&self, out: &mut [f32]) {
        let bpw = self.format.bytes_per_weight();
        assert_eq!(
            out.len(),
            self.len(),
            "read_weights_into buffer of {} cannot hold {} weights",
            out.len(),
            self.len()
        );
        for (slot, c) in out.iter_mut().zip(self.bytes.chunks_exact(bpw)) {
            *slot = self.format.decode(c);
        }
    }

    fn write_weights(&mut self, weights: &[f32]) -> Result<(), SubstrateError> {
        if weights.len() != self.len() {
            return Err(SubstrateError::LengthMismatch {
                expected: self.len(),
                got: weights.len(),
            });
        }
        *self = QuantMemory::store(self.format, weights);
        Ok(())
    }

    fn write_weights_sparse(&mut self, updates: &[(usize, f32)]) -> Result<(), SubstrateError> {
        let len = self.len();
        let bpw = self.format.bytes_per_weight();
        for &(idx, value) in updates {
            if idx >= len {
                return Err(SubstrateError::LengthMismatch {
                    expected: len,
                    got: idx + 1,
                });
            }
            self.format
                .encode(value, &mut self.bytes[idx * bpw..(idx + 1) * bpw]);
        }
        Ok(())
    }

    fn scrub(&mut self) -> ScrubSummary {
        ScrubSummary::default()
    }

    fn export_raw(&self) -> Vec<u8> {
        self.bytes.clone()
    }

    fn import_raw(&mut self, raw: &[u8]) -> Result<(), SubstrateError> {
        if raw.len() != self.bytes.len() {
            return Err(SubstrateError::Backend(format!(
                "raw image of {} bytes cannot hold {} quantized weights",
                raw.len(),
                self.len()
            )));
        }
        self.bytes.copy_from_slice(raw);
        Ok(())
    }

    fn storage_overhead(&self) -> usize {
        // Quantized pages store *less* than the 4-byte-per-weight
        // plaintext baseline; extra-cost accounting reports zero.
        0
    }
}

/// Quantized weights under SECDED protection: 4 quantized bytes (4 int8
/// or 2 fp16 weights) per (39,32) code word — ECC DRAM over quantized
/// pages.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantSecdedMemory {
    format: QuantFormat,
    /// One SECDED code word per 4 quantized bytes (zero-padded tail).
    words: Vec<u64>,
    /// Number of valid weights (final word may hold padding).
    len: usize,
}

impl QuantSecdedMemory {
    /// Quantizes and SECDED-encodes a weight buffer.
    pub fn protect(format: QuantFormat, weights: &[f32]) -> Self {
        let bpw = format.bytes_per_weight();
        let mut bytes = vec![0u8; (weights.len() * bpw).div_ceil(WORD_BYTES) * WORD_BYTES];
        for (chunk, &w) in bytes.chunks_exact_mut(bpw).zip(weights) {
            format.encode(w, chunk);
        }
        let words = bytes
            .chunks_exact(WORD_BYTES)
            .map(|c| Secded::encode(u32::from_le_bytes(c.try_into().expect("chunk of 4"))))
            .collect();
        QuantSecdedMemory {
            format,
            words,
            len: weights.len(),
        }
    }

    /// Reconstructs a memory from raw code words (the persistence path;
    /// preserves any in-flight error state bit-for-bit).
    ///
    /// # Panics
    ///
    /// Panics when the word count cannot hold `len` weights.
    pub fn from_words(format: QuantFormat, words: Vec<u64>, len: usize) -> Self {
        assert!(
            words.len() * WORD_BYTES >= len * format.bytes_per_weight(),
            "raw image of {} words cannot hold {len} {:?} weights",
            words.len(),
            format
        );
        QuantSecdedMemory { format, words, len }
    }

    /// The page encoding.
    pub fn format(&self) -> QuantFormat {
        self.format
    }

    /// Number of SECDED code words.
    pub fn code_words(&self) -> usize {
        self.words.len()
    }

    /// Weights stored in the word holding the given raw bit — the blast
    /// radius of an uncorrectable code word (4 int8 / 2 fp16 weights).
    pub fn blast_radius(&self, bit: usize) -> std::ops::Range<usize> {
        let wpw = WORD_BYTES / self.format.bytes_per_weight();
        let word = bit / Secded::CODE_BITS as usize;
        (word * wpw).min(self.len)..((word + 1) * wpw).min(self.len)
    }
}

impl WeightSubstrate for QuantSecdedMemory {
    fn label(&self) -> &'static str {
        self.format.secded_label()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn raw_bits(&self) -> usize {
        self.words.len() * Secded::CODE_BITS as usize
    }

    fn raw_word_of_bit(&self, bit: usize) -> usize {
        bit / Secded::CODE_BITS as usize
    }

    fn raw_geometry(&self) -> RawGeometry {
        RawGeometry {
            word_bits: Secded::CODE_BITS as usize,
            words_per_row: 4,
        }
    }

    fn raw_bit(&self, bit: usize) -> bool {
        assert!(bit < self.raw_bits(), "raw bit {bit} out of range");
        let per = Secded::CODE_BITS as usize;
        (self.words[bit / per] >> (bit % per)) & 1 == 1
    }

    fn flip_raw_bit(&mut self, bit: usize) {
        assert!(bit < self.raw_bits(), "raw bit {bit} out of range");
        let per = Secded::CODE_BITS as usize;
        self.words[bit / per] ^= 1u64 << (bit % per);
    }

    fn read_weights(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len];
        self.read_weights_into(&mut out);
        out
    }

    fn read_weights_into(&self, out: &mut [f32]) {
        assert_eq!(
            out.len(),
            self.len,
            "read_weights_into buffer of {} cannot hold {} weights",
            out.len(),
            self.len
        );
        let bpw = self.format.bytes_per_weight();
        let wpw = WORD_BYTES / bpw;
        for (word_idx, &w) in self.words.iter().enumerate() {
            let bytes = Secded::decode(w).data().to_le_bytes();
            let base = word_idx * wpw;
            for (i, chunk) in bytes.chunks_exact(bpw).enumerate() {
                if base + i < self.len {
                    out[base + i] = self.format.decode(chunk);
                }
            }
        }
    }

    fn write_weights(&mut self, weights: &[f32]) -> Result<(), SubstrateError> {
        if weights.len() != self.len {
            return Err(SubstrateError::LengthMismatch {
                expected: self.len,
                got: weights.len(),
            });
        }
        *self = QuantSecdedMemory::protect(self.format, weights);
        Ok(())
    }

    fn write_weights_sparse(&mut self, updates: &[(usize, f32)]) -> Result<(), SubstrateError> {
        // A quantized weight never straddles a 32-bit word (1- and
        // 2-byte encodings at aligned offsets), so each update decodes,
        // patches and re-encodes exactly one code word; every untouched
        // word keeps its raw error state bit-for-bit.
        let bpw = self.format.bytes_per_weight();
        let wpw = WORD_BYTES / bpw;
        for &(idx, value) in updates {
            if idx >= self.len {
                return Err(SubstrateError::LengthMismatch {
                    expected: self.len,
                    got: idx + 1,
                });
            }
            let word = idx / wpw;
            let mut bytes = Secded::decode(self.words[word]).data().to_le_bytes();
            let off = (idx % wpw) * bpw;
            self.format.encode(value, &mut bytes[off..off + bpw]);
            self.words[word] = Secded::encode(u32::from_le_bytes(bytes));
        }
        Ok(())
    }

    fn scrub(&mut self) -> ScrubSummary {
        let mut summary = ScrubSummary::default();
        for w in &mut self.words {
            if Secded::is_clean(*w) {
                continue;
            }
            match Secded::decode(*w) {
                DecodeOutcome::Clean { .. } => unreachable!("screened dirty"),
                DecodeOutcome::Corrected { data, .. } => {
                    summary.corrected += 1;
                    *w = Secded::encode(data);
                }
                DecodeOutcome::DoubleError { .. } => summary.uncorrectable += 1,
            }
        }
        summary
    }

    fn export_raw(&self) -> Vec<u8> {
        self.words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    fn import_raw(&mut self, raw: &[u8]) -> Result<(), SubstrateError> {
        if raw.len() != self.words.len() * 8 {
            return Err(SubstrateError::Backend(format!(
                "raw image of {} bytes cannot hold {} code words",
                raw.len(),
                self.words.len()
            )));
        }
        self.words = raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        Ok(())
    }

    fn storage_overhead(&self) -> usize {
        // Check bits per code word plus tail padding — still far below
        // the 4-bytes-per-weight plaintext baseline.
        let padding = self.words.len() * WORD_BYTES - self.len * self.format.bytes_per_weight();
        self.words.len() * Secded::CHECK_BITS as usize / 8 + padding
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FORMATS: [QuantFormat; 2] = [QuantFormat::Int8, QuantFormat::Fp16];

    /// Grid-aligned weights: exactly representable in both formats.
    fn grid_weights(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (i as i32 % 129 - 64) as f32 * 0.015625)
            .collect()
    }

    #[test]
    fn grid_aligned_roundtrip_is_bit_exact() {
        for format in FORMATS {
            let w = grid_weights(19);
            let plain = QuantMemory::store(format, &w);
            let coded = QuantSecdedMemory::protect(format, &w);
            for mem in [&plain as &dyn WeightSubstrate, &coded] {
                let got: Vec<u32> = mem.read_weights().iter().map(|v| v.to_bits()).collect();
                let want: Vec<u32> = w.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "{}", mem.label());
            }
        }
    }

    #[test]
    fn off_grid_values_snap() {
        for format in FORMATS {
            let mem = QuantMemory::store(format, &[0.1, -0.33, 1.7]);
            for (got, v) in mem.read_weights().iter().zip([0.1f32, -0.33, 1.7]) {
                assert_eq!(got.to_bits(), format.snap(v).to_bits());
                assert!((got - v).abs() < 0.01, "{v} -> {got}");
            }
        }
    }

    #[test]
    fn secded_scrub_corrects_single_flips() {
        for format in FORMATS {
            let w = grid_weights(10);
            let mut mem = QuantSecdedMemory::protect(format, &w);
            mem.flip_raw_bit(17);
            mem.flip_raw_bit(39 + 3);
            let summary = mem.scrub();
            assert_eq!(summary.corrected, 2, "{format:?}");
            assert_eq!(summary.uncorrectable, 0);
            let got: Vec<u32> = mem.read_weights().iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = w.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "{format:?}");
            assert!(mem.scrub().is_clean());
        }
    }

    #[test]
    fn secded_double_flip_garbles_only_its_word() {
        for format in FORMATS {
            let w = grid_weights(12);
            let mut mem = QuantSecdedMemory::protect(format, &w);
            mem.flip_raw_bit(39 + 5);
            mem.flip_raw_bit(39 + 21);
            let summary = mem.scrub();
            assert_eq!(summary.uncorrectable, 1, "{format:?}");
            let seen = mem.read_weights();
            let radius = mem.blast_radius(39);
            let garbled: Vec<usize> = (0..w.len()).filter(|&i| seen[i] != w[i]).collect();
            assert!(!garbled.is_empty(), "{format:?}");
            assert!(
                garbled.iter().all(|i| radius.contains(i)),
                "{format:?}: {garbled:?} outside {radius:?}"
            );
        }
    }

    #[test]
    fn sparse_write_preserves_untouched_raw_state() {
        for format in FORMATS {
            let w = grid_weights(16);
            let mut mem = QuantSecdedMemory::protect(format, &w);
            // Plant error state in a word no update touches.
            let last_word = mem.code_words() - 1;
            mem.flip_raw_bit(last_word * 39 + 7);
            let before = mem.export_raw();
            mem.write_weights_sparse(&[(0, 0.5), (1, -0.5)]).unwrap();
            let after = mem.export_raw();
            assert_eq!(
                &before[8..],
                &after[8..],
                "{format:?}: untouched words changed"
            );
            let seen = mem.read_weights();
            assert_eq!(seen[0].to_bits(), 0.5f32.to_bits());
            assert_eq!(seen[1].to_bits(), (-0.5f32).to_bits());
        }
    }

    #[test]
    fn plain_flips_affect_exactly_one_weight() {
        for format in FORMATS {
            let w = grid_weights(8);
            let mut mem = QuantMemory::store(format, &w);
            let bit = format.bytes_per_weight() * 8 * 3 + 2; // inside weight 3
            mem.flip_raw_bit(bit);
            assert_eq!(mem.raw_word_of_bit(bit), 3);
            let seen = mem.read_weights();
            for (i, (got, want)) in seen.iter().zip(&w).enumerate() {
                if i == 3 {
                    assert_ne!(got.to_bits(), want.to_bits(), "{format:?}");
                } else {
                    assert_eq!(got.to_bits(), want.to_bits(), "{format:?} weight {i}");
                }
            }
            assert!(mem.scrub().is_clean(), "no code layer");
        }
    }

    #[test]
    fn export_import_roundtrip() {
        for format in FORMATS {
            let w = grid_weights(9);
            for mem in [
                &mut QuantMemory::store(format, &w) as &mut dyn WeightSubstrate,
                &mut QuantSecdedMemory::protect(format, &w),
            ] {
                mem.flip_raw_bit(5);
                let image = mem.export_raw();
                let before = mem.read_weights();
                mem.flip_raw_bit(6);
                mem.import_raw(&image).unwrap();
                assert_eq!(mem.export_raw(), image, "{}", mem.label());
                let after: Vec<u32> = mem.read_weights().iter().map(|v| v.to_bits()).collect();
                let want: Vec<u32> = before.iter().map(|v| v.to_bits()).collect();
                assert_eq!(after, want, "{}", mem.label());
                assert!(mem.import_raw(&image[1..]).is_err());
            }
        }
    }
}
