//! The composed substrate: SECDED ECC laid over AES-XTS **ciphertext**
//! words — ECC DRAM inside an encrypted VM.
//!
//! This is the paper's ciphertext-space argument made executable. The
//! ECC layer sees only ciphertext, so it happily corrects any single
//! raw-bit error before decryption (harmless), but an uncorrectable
//! codeword passes multi-bit-corrupted *ciphertext* through to the
//! decryptor, which garbles the whole 16-byte block — four weights —
//! in plaintext space. Per-word ECC therefore cannot bound plaintext
//! damage under encryption; only a plaintext-space scheme (MILR) can.

use crate::{RawGeometry, ScrubSummary, SubstrateError, WeightSubstrate};
use milr_ecc::{DecodeOutcome, Secded};
use milr_xts::{EncryptedMemory, XtsCipher, BLOCK_BYTES, WEIGHTS_PER_BLOCK};

/// Words of ciphertext per 16-byte cipher block.
const WORDS_PER_BLOCK: usize = BLOCK_BYTES / 4;

/// One cipher block (4 SECDED code words) per geometry row.
const XTS_SECDED_GEOMETRY: RawGeometry = RawGeometry {
    word_bits: Secded::CODE_BITS as usize,
    words_per_row: WORDS_PER_BLOCK,
};

/// Weights stored as AES-XTS ciphertext with one (39,32) SECDED code
/// word per 32-bit ciphertext word.
#[derive(Debug, Clone)]
pub struct XtsSecdedMemory {
    cipher: XtsCipher,
    /// SECDED code words over the ciphertext, 4 per cipher block.
    words: Vec<u64>,
    /// Number of valid weights (final block may be padding).
    len: usize,
}

impl XtsSecdedMemory {
    /// Encrypts a weight buffer and puts every ciphertext word under
    /// SECDED protection.
    pub fn protect(weights: &[f32], cipher: XtsCipher) -> Self {
        let mem = EncryptedMemory::encrypt(weights, cipher.clone())
            .expect("padded plaintext length is always block-aligned");
        let words = mem
            .ciphertext()
            .chunks_exact(4)
            .map(|b| Secded::encode(u32::from_le_bytes(b.try_into().expect("chunk of 4"))))
            .collect();
        XtsSecdedMemory {
            cipher,
            words,
            len: weights.len(),
        }
    }

    /// Reconstructs a memory from raw code words (the persistence path;
    /// preserves any in-flight error state bit-for-bit).
    ///
    /// # Panics
    ///
    /// Panics when the word count is not a whole number of blocks or
    /// cannot hold `len` weights.
    pub fn from_words(words: Vec<u64>, len: usize, cipher: XtsCipher) -> Self {
        assert!(
            words.len().is_multiple_of(WORDS_PER_BLOCK) && words.len() * 4 >= len * 4,
            "raw image of {} words cannot hold {len} weights",
            words.len()
        );
        XtsSecdedMemory { cipher, words, len }
    }

    /// Number of SECDED code words (4 per cipher block).
    pub fn code_words(&self) -> usize {
        self.words.len()
    }

    /// The range of weight indices garbled when the code word holding
    /// the given raw bit is uncorrectable: all weights of its block.
    pub fn blast_radius(&self, bit: usize) -> std::ops::Range<usize> {
        let block = self.raw_word_of_bit(bit) / WORDS_PER_BLOCK;
        (block * WEIGHTS_PER_BLOCK).min(self.len)..((block + 1) * WEIGHTS_PER_BLOCK).min(self.len)
    }
}

impl WeightSubstrate for XtsSecdedMemory {
    fn label(&self) -> &'static str {
        "AES-XTS + SECDED DRAM"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn raw_bits(&self) -> usize {
        self.words.len() * Secded::CODE_BITS as usize
    }

    fn raw_word_of_bit(&self, bit: usize) -> usize {
        bit / Secded::CODE_BITS as usize
    }

    fn raw_geometry(&self) -> RawGeometry {
        XTS_SECDED_GEOMETRY
    }

    fn raw_bit(&self, bit: usize) -> bool {
        assert!(bit < self.raw_bits(), "raw bit {bit} out of range");
        let per = Secded::CODE_BITS as usize;
        (self.words[bit / per] >> (bit % per)) & 1 == 1
    }

    fn flip_raw_bit(&mut self, bit: usize) {
        assert!(bit < self.raw_bits(), "raw bit {bit} out of range");
        let per = Secded::CODE_BITS as usize;
        self.words[bit / per] ^= 1u64 << (bit % per);
    }

    fn read_weights(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len];
        self.read_weights_into(&mut out);
        out
    }

    fn read_weights_into(&self, out: &mut [f32]) {
        assert_eq!(
            out.len(),
            self.len,
            "read_weights_into buffer of {} cannot hold {} weights",
            out.len(),
            self.len
        );
        // Block-wise decode + decrypt through a stack buffer: no
        // intermediate ciphertext Vec on the serving read path.
        let mut bytes = [0u8; BLOCK_BYTES];
        for (block, words) in self.words.chunks_exact(WORDS_PER_BLOCK).enumerate() {
            for (chunk, &w) in bytes.chunks_exact_mut(4).zip(words) {
                chunk.copy_from_slice(&Secded::decode(w).data().to_le_bytes());
            }
            self.cipher
                .decrypt_unit(&mut bytes, block as u64)
                .expect("whole blocks by construction");
            let base = block * WEIGHTS_PER_BLOCK;
            for (i, chunk) in bytes.chunks_exact(4).enumerate() {
                if base + i < self.len {
                    out[base + i] = f32::from_le_bytes(chunk.try_into().expect("chunk of 4"));
                }
            }
        }
    }

    fn write_weights(&mut self, weights: &[f32]) -> Result<(), SubstrateError> {
        if weights.len() != self.len {
            return Err(SubstrateError::LengthMismatch {
                expected: self.len,
                got: weights.len(),
            });
        }
        *self = XtsSecdedMemory::protect(weights, self.cipher.clone());
        Ok(())
    }

    fn write_weights_sparse(&mut self, updates: &[(usize, f32)]) -> Result<(), SubstrateError> {
        // XTS forces block granularity: each touched 16-byte block is
        // decoded, decrypted, patched, re-encrypted and re-encoded, but
        // every *untouched* block keeps its raw error state bit-for-bit.
        for &(idx, _) in updates {
            if idx >= self.len {
                return Err(SubstrateError::LengthMismatch {
                    expected: self.len,
                    got: idx + 1,
                });
            }
        }
        let mut blocks: Vec<usize> = updates
            .iter()
            .map(|&(idx, _)| idx / WEIGHTS_PER_BLOCK)
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        for block in blocks {
            let words = &mut self.words[block * WORDS_PER_BLOCK..(block + 1) * WORDS_PER_BLOCK];
            let mut bytes = [0u8; BLOCK_BYTES];
            for (chunk, &w) in bytes.chunks_exact_mut(4).zip(words.iter()) {
                chunk.copy_from_slice(&Secded::decode(w).data().to_le_bytes());
            }
            self.cipher
                .decrypt_unit(&mut bytes, block as u64)
                .expect("whole blocks by construction");
            for &(idx, value) in updates {
                if idx / WEIGHTS_PER_BLOCK == block {
                    let off = (idx % WEIGHTS_PER_BLOCK) * 4;
                    bytes[off..off + 4].copy_from_slice(&value.to_le_bytes());
                }
            }
            self.cipher
                .encrypt_unit(&mut bytes, block as u64)
                .expect("whole blocks by construction");
            for (w, chunk) in words.iter_mut().zip(bytes.chunks_exact(4)) {
                *w = Secded::encode(u32::from_le_bytes(chunk.try_into().expect("chunk of 4")));
            }
        }
        Ok(())
    }

    fn scrub(&mut self) -> ScrubSummary {
        // Screen-then-repair, same shape as `SecdedMemory::scrub_in_place`:
        // the branch-free syndrome check flags dirty words and only those
        // go through full decode + re-encode. No allocation.
        let mut summary = ScrubSummary::default();
        for w in &mut self.words {
            if Secded::is_clean(*w) {
                continue;
            }
            match Secded::decode(*w) {
                DecodeOutcome::Clean { .. } => unreachable!("screened dirty"),
                DecodeOutcome::Corrected { data, .. } => {
                    summary.corrected += 1;
                    *w = Secded::encode(data);
                }
                DecodeOutcome::DoubleError { .. } => summary.uncorrectable += 1,
            }
        }
        summary
    }

    fn export_raw(&self) -> Vec<u8> {
        self.words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    fn import_raw(&mut self, raw: &[u8]) -> Result<(), SubstrateError> {
        if raw.len() != self.words.len() * 8 {
            return Err(SubstrateError::Backend(format!(
                "raw image of {} bytes cannot hold {} code words",
                raw.len(),
                self.words.len()
            )));
        }
        self.words = raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        Ok(())
    }

    fn storage_overhead(&self) -> usize {
        // Check bits over every ciphertext word, plus block padding.
        let padding = self.words.len() * 4 - self.len * 4;
        self.words.len() * Secded::CHECK_BITS as usize / 8 + padding
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher() -> XtsCipher {
        XtsCipher::new(&[0x13; 16], &[0x31; 16])
    }

    fn weights(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32 * 0.3 - 5.0).collect()
    }

    #[test]
    fn roundtrip() {
        for n in [1usize, 4, 7, 64] {
            let w = weights(n);
            let mem = XtsSecdedMemory::protect(&w, cipher());
            assert_eq!(mem.len(), n);
            assert_eq!(mem.read_weights(), w);
            assert_eq!(mem.code_words(), n.div_ceil(4) * 4);
        }
    }

    #[test]
    fn single_ciphertext_flip_is_fully_corrected() {
        // The benign case: ECC repairs the ciphertext before decryption,
        // so plaintext is intact — encryption does not defeat ECC for
        // single-bit errors.
        let w = weights(16);
        let mut mem = XtsSecdedMemory::protect(&w, cipher());
        mem.flip_raw_bit(2 * 39 + 7);
        let summary = mem.scrub();
        assert_eq!(summary.corrected, 1);
        assert_eq!(summary.uncorrectable, 0);
        assert_eq!(mem.read_weights(), w);
    }

    #[test]
    fn double_flip_garbles_exactly_one_block() {
        // The paper's scenario: two raw flips in one codeword defeat
        // SECDED; the surviving ciphertext error decrypts to a whole
        // garbled 16-byte block (4 weights) while every other block is
        // untouched.
        let w = weights(16);
        let mut mem = XtsSecdedMemory::protect(&w, cipher());
        let word = 5; // block 1
        mem.flip_raw_bit(word * 39 + 2);
        mem.flip_raw_bit(word * 39 + 20);
        let summary = mem.scrub();
        assert_eq!(summary.uncorrectable, 1);
        let seen = mem.read_weights();
        let radius = mem.blast_radius(word * 39);
        assert_eq!(radius, 4..8);
        let garbled: Vec<usize> = (0..16).filter(|&i| seen[i] != w[i]).collect();
        assert!(!garbled.is_empty());
        assert!(garbled.iter().all(|i| radius.contains(i)), "{garbled:?}");
    }

    #[test]
    fn write_back_heals_everything() {
        let w = weights(8);
        let mut mem = XtsSecdedMemory::protect(&w, cipher());
        mem.flip_raw_bit(0);
        mem.flip_raw_bit(1);
        mem.write_weights(&w).unwrap();
        assert!(mem.scrub().is_clean());
        assert_eq!(mem.read_weights(), w);
        assert!(mem.write_weights(&weights(9)).is_err());
    }

    #[test]
    fn overhead_combines_check_bits_and_padding() {
        let mem = XtsSecdedMemory::protect(&weights(5), cipher());
        // 5 weights -> 2 blocks -> 8 ciphertext words: 8*7/8 check bytes
        // + 12 padding bytes.
        assert_eq!(mem.storage_overhead(), 7 + 12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_bounds_checked() {
        let mut mem = XtsSecdedMemory::protect(&weights(4), cipher());
        mem.flip_raw_bit(mem.raw_bits());
    }
}
