//! Concurrency properties of [`SharedSubstrate`]: interleaved
//! `scrub`/`flip_raw_bit`/`write_shard`/`read` schedules never yield
//! **torn** plaintext (a shard mixing two writes) or **stale** plaintext
//! (a value no serialization of the completed operations could
//! produce). The serial reference schedule is the lock-acquisition
//! order itself: every assertion below states what *any* serialization
//! of the issued operations must satisfy.

use milr_substrate::{SharedSubstrate, SubstrateKind};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Writers replace whole shards with uniform generation patterns
    /// while readers hammer the same shards: every read must be
    /// uniform (not torn) and per-shard generations must be monotone
    /// non-decreasing across a single reader's consecutive reads (the
    /// lock serializes, so going backwards would mean a stale read).
    #[test]
    fn interleaved_writes_are_never_torn_or_stale(
        shard_weights in 8usize..40,
        shards in 2usize..5,
        generations in 8usize..24,
    ) {
        let total = shard_weights * shards;
        let golden = vec![0.0f32; total];
        let shared = SharedSubstrate::store_with(&golden, shards, |c| {
            SubstrateKind::Plain.store(c)
        });
        prop_assert_eq!(shared.shard_count(), shards);
        let done = AtomicBool::new(false);
        let torn = AtomicUsize::new(0);
        let stale = AtomicUsize::new(0);
        std::thread::scope(|s| {
            // One writer per shard: generation g writes the uniform
            // pattern `g` over the whole shard.
            for shard in 0..shards {
                let shared = shared.clone();
                s.spawn(move || {
                    let n = shared.read_shard(shard).len();
                    for g in 1..=generations {
                        shared.write_shard(shard, &vec![g as f32; n]).unwrap();
                    }
                });
            }
            // Two readers sweep all shards until writers finish.
            for _ in 0..2 {
                let shared = shared.clone();
                let done = &done;
                let torn = &torn;
                let stale = &stale;
                s.spawn(move || {
                    let mut last = vec![0.0f32; shards];
                    while !done.load(Ordering::Acquire) {
                        for (shard, floor) in last.iter_mut().enumerate() {
                            let seen = shared.read_shard(shard);
                            let head = seen[0];
                            if seen.iter().any(|&v| v != head) {
                                torn.fetch_add(1, Ordering::Relaxed);
                            }
                            if head < *floor {
                                stale.fetch_add(1, Ordering::Relaxed);
                            }
                            *floor = head;
                        }
                    }
                });
            }
            // Writers are the first `shards` spawned threads; scope
            // join happens at the end, so flag completion by watching
            // the final generation land everywhere.
            let shared_done = shared.clone();
            let done = &done;
            s.spawn(move || loop {
                let finished =
                    (0..shards).all(|i| shared_done.read_shard(i)[0] == generations as f32);
                if finished {
                    done.store(true, Ordering::Release);
                    break;
                }
                std::thread::yield_now();
            });
        });
        prop_assert_eq!(torn.load(Ordering::Relaxed), 0, "torn shard reads observed");
        prop_assert_eq!(stale.load(Ordering::Relaxed), 0, "stale shard reads observed");
        // Final state equals the last write of every serialization.
        for shard in 0..shards {
            let seen = shared.read_shard(shard);
            prop_assert!(seen.iter().all(|&v| v == generations as f32));
        }
    }

    /// SECDED shards under concurrent single-bit injection + scrubbing:
    /// because one flipped bit per code word is corrected on *read* as
    /// well as on scrub, every interleaving must decode the golden
    /// plaintext exactly — the same answer as the serial reference
    /// schedule (inject, scrub, read in any order).
    #[test]
    fn scrub_vs_read_always_decodes_golden_plaintext(
        golden in proptest::collection::vec(-4.0f32..4.0, 24..64),
        seed in 0u64..1000,
        shards in 1usize..4,
    ) {
        let shared = SharedSubstrate::store_with(&golden, shards, |c| {
            SubstrateKind::Secded.store(c)
        });
        let raw_bits = shared.raw_bits();
        let words = golden.len();
        let mismatches = AtomicUsize::new(0);
        std::thread::scope(|s| {
            // Injector+scrubber: flip one bit of one 39-bit code word,
            // then scrub it back, repeatedly. The flip and the scrub
            // are separate lock acquisitions, so readers genuinely
            // interleave between them.
            {
                let shared = shared.clone();
                s.spawn(move || {
                    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                    for _ in 0..200 {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let word = (state >> 33) as usize % words;
                        let bit = (state >> 17) as usize % 39;
                        let flip = word * 39 + bit;
                        assert!(flip < raw_bits);
                        shared.flip_raw_bit(flip);
                        shared.scrub();
                    }
                });
            }
            for _ in 0..3 {
                let shared = shared.clone();
                let golden = &golden;
                let mismatches = &mismatches;
                s.spawn(move || {
                    for _ in 0..200 {
                        if shared.read_weights() != *golden {
                            mismatches.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        prop_assert_eq!(
            mismatches.load(Ordering::Relaxed),
            0,
            "a read diverged from the serial reference plaintext"
        );
        // After the final scrub the raw store is fully repaired too.
        prop_assert!(shared.scrub().is_clean());
        prop_assert_eq!(shared.read_weights(), golden);
    }
}
