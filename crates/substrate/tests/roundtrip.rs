//! Property-style round-trip tests over every [`WeightSubstrate`]
//! implementation: encode → flip raw bits → scrub/decrypt must behave
//! per each substrate's contract (single-bit corrected under SECDED,
//! multi-bit passes through, a ciphertext flip garbles exactly one
//! 16-byte block under XTS, and the composed substrate corrects single
//! flips but garbles one block on double flips).

use milr_substrate::{SubstrateKind, WeightSubstrate, XtsSecdedMemory};
use milr_xts::WEIGHTS_PER_BLOCK;
use proptest::prelude::*;

fn weights(n: usize, seed: u64) -> Vec<f32> {
    // Cheap deterministic pattern; exact values are irrelevant, only
    // bit-exact round-tripping is.
    (0..n)
        .map(|i| ((i as u64 + 1).wrapping_mul(seed | 1) % 1000) as f32 * 0.013 - 6.5)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Storing then reading returns the original weights bit-exactly,
    /// for every substrate and buffer size (including non-block-aligned
    /// sizes for the encrypted substrates).
    #[test]
    fn store_read_roundtrip(n in 1usize..70, seed in 1u64..1000) {
        let w = weights(n, seed);
        for kind in SubstrateKind::ALL {
            let mem = kind.store(&w);
            prop_assert_eq!(mem.read_weights(), w.clone(), "{}", kind);
        }
    }

    /// Write-back after arbitrary raw corruption fully heals every
    /// substrate (the MILR recovery write path).
    #[test]
    fn write_back_heals_any_corruption(
        n in 4usize..40,
        seed in 1u64..1000,
        flips in proptest::collection::vec(0usize..128, 1..8),
    ) {
        let w = weights(n, seed);
        for kind in SubstrateKind::ALL {
            let mut mem = kind.store(&w);
            for &f in &flips {
                let bit = f % mem.raw_bits();
                mem.flip_raw_bit(bit);
            }
            mem.write_weights(&w).unwrap();
            mem.scrub();
            prop_assert_eq!(mem.read_weights(), w.clone(), "{}", kind);
        }
    }

    /// One raw flip under SECDED (plain or over ciphertext) is always
    /// corrected by the scrub; plain/xts substrates report clean scrubs.
    #[test]
    fn single_flip_contract(n in 1usize..40, seed in 1u64..1000, flip in 0usize..4096) {
        let w = weights(n, seed);
        for kind in SubstrateKind::ALL {
            let mut mem = kind.store(&w);
            let bit = flip % mem.raw_bits();
            mem.flip_raw_bit(bit);
            let summary = mem.scrub();
            match kind {
                SubstrateKind::Secded | SubstrateKind::XtsSecded => {
                    prop_assert_eq!(summary.corrected, 1, "{}", kind);
                    prop_assert_eq!(summary.uncorrectable, 0, "{}", kind);
                    prop_assert_eq!(mem.read_weights(), w.clone(), "{}", kind);
                }
                SubstrateKind::Plain | SubstrateKind::Xts => {
                    prop_assert!(summary.is_clean(), "{}", kind);
                    prop_assert_ne!(mem.read_weights(), w.clone(), "{}", kind);
                }
                _ => unreachable!("ALL holds only in-memory kinds"),
            }
        }
    }

    /// Two flips in one SECDED code word defeat the code: the scrub
    /// reports an uncorrectable word and the plaintext stays corrupt.
    #[test]
    fn double_flip_defeats_secded(n in 1usize..40, seed in 1u64..1000, word_sel in 0usize..4096) {
        let w = weights(n, seed);
        for kind in [SubstrateKind::Secded, SubstrateKind::XtsSecded] {
            let mut mem = kind.store(&w);
            let words = mem.raw_bits() / 39;
            let word = word_sel % words;
            mem.flip_raw_bit(word * 39 + 3);
            mem.flip_raw_bit(word * 39 + 21);
            let summary = mem.scrub();
            prop_assert_eq!(summary.uncorrectable, 1, "{}", kind);
            // Padding-only words (beyond the stored weights) can garble
            // without touching any valid weight; everywhere else the
            // plaintext must differ.
            if kind == SubstrateKind::Secded {
                prop_assert_ne!(mem.read_weights(), w.clone(), "{}", kind);
            }
        }
    }

    /// A plain-XTS ciphertext flip garbles weights in exactly one
    /// 16-byte block (the blast radius) and nothing else.
    #[test]
    fn xts_flip_garbles_exactly_one_block(n in 1usize..70, seed in 1u64..1000, flip in 0usize..8192) {
        let w = weights(n, seed);
        let mut mem = SubstrateKind::Xts.store(&w);
        let bit = flip % mem.raw_bits();
        let block = mem.raw_word_of_bit(bit);
        mem.flip_raw_bit(bit);
        let seen = mem.read_weights();
        for (i, (a, b)) in seen.iter().zip(w.iter()).enumerate() {
            if i / WEIGHTS_PER_BLOCK != block {
                prop_assert_eq!(a, b, "weight {} outside block {} changed", i, block);
            }
        }
        // AES diffusion: if any stored weight shares the block, at
        // least one of them changes.
        if block * WEIGHTS_PER_BLOCK < n {
            prop_assert!(
                (block * WEIGHTS_PER_BLOCK..((block + 1) * WEIGHTS_PER_BLOCK).min(n))
                    .any(|i| seen[i] != w[i]),
                "block {} unchanged after ciphertext flip", block
            );
        }
    }

    /// Composed substrate: double flip garbles only the hit block after
    /// scrubbing, exactly like bare XTS — ECC adds nothing against it.
    #[test]
    fn xts_secded_double_flip_blast_radius(n in 4usize..40, seed in 1u64..1000, word_sel in 0usize..256) {
        let w = weights(n, seed);
        let mut mem = XtsSecdedMemory::protect(&w, SubstrateKind::cipher());
        let word = word_sel % mem.code_words();
        let bit = word * 39;
        mem.flip_raw_bit(bit + 1);
        mem.flip_raw_bit(bit + 17);
        mem.scrub();
        let radius = mem.blast_radius(bit);
        let seen = mem.read_weights();
        for (i, (a, b)) in seen.iter().zip(w.iter()).enumerate() {
            if !radius.contains(&i) {
                prop_assert_eq!(a, b, "weight {} outside radius {:?} changed", i, radius);
            }
        }
    }
}
