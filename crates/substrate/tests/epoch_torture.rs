//! Epoch-snapshot torture test: seeded writer threads hammer every
//! data-changing operation — whole-shard writes, raw bit flips with
//! scrub repair, raw image re-imports — while reader threads take
//! versioned snapshots of the same shards. The epoch contract under
//! test is the one the serving fast path leans on:
//!
//! * **No torn or stale-epoch decode**: two reads of the same shard
//!   that observe the same epoch must observe bit-identical plaintext,
//!   across *all* threads. An epoch-tagged cache entry is therefore
//!   always safe to serve while the shard's live epoch still matches.
//! * **Monotonicity**: a single reader never sees a shard's epoch go
//!   backwards.
//!
//! Everything is seeded (a splitmix/LCG per thread) and runs on plain
//! `std::thread` — no extra dependencies — over all four substrate
//! kinds, so the schedule-space search is cheap enough for every CI
//! run.

use milr_substrate::{SharedSubstrate, SubstrateKind};
use std::collections::HashMap;

const SHARDS: usize = 3;
const SHARD_WEIGHTS: usize = 26; // 2 codewords per shard for SECDED kinds
const GENERATIONS: usize = 60;
const READERS: usize = 3;
const READS_PER_READER: usize = 400;

/// FNV-1a over the plaintext bit pattern (`to_bits` sidesteps NaN and
/// signed-zero equality traps for the fault-injected Plain/Xts kinds).
fn fingerprint(weights: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in weights {
        for b in w.to_bits().to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

struct Lcg(u64);

impl Lcg {
    fn seeded(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// One writer per shard cycles through every epoch-bumping operation;
/// readers sweep all shards with both versioned read entry points and
/// log `(shard, epoch) -> fingerprint` observations, merged and
/// cross-checked at the end.
fn torture(kind: SubstrateKind, seed: u64) {
    let golden: Vec<f32> = (0..SHARDS * SHARD_WEIGHTS)
        .map(|i| (i as f32) * 0.25 - 7.0)
        .collect();
    let shared = SharedSubstrate::store_with(&golden, SHARDS, |c| kind.store(c));
    assert_eq!(shared.shard_count(), SHARDS);

    let observations: Vec<Vec<(usize, u64, u64)>> = std::thread::scope(|s| {
        for shard in 0..SHARDS {
            let shared = shared.clone();
            let mut rng = Lcg::seeded(seed ^ (shard as u64) << 8);
            s.spawn(move || {
                let n = shared.read_shard(shard).len();
                let (r_lo, r_hi) = shared.shard_raw_range(shard);
                for g in 1..=GENERATIONS {
                    match rng.next() % 3 {
                        0 => {
                            // Whole-shard write: a fresh generation.
                            let pattern = g as f32 + shard as f32 * 1000.0;
                            shared.write_shard(shard, &vec![pattern; n]).unwrap();
                        }
                        1 => {
                            // Inject one raw fault, then scrub. Writers
                            // are per-shard, so at most one bit is
                            // outstanding per codeword — within every
                            // kind's correction (or tolerated garbling)
                            // envelope.
                            let bit = r_lo + rng.next() as usize % (r_hi - r_lo);
                            shared.flip_raw_bit(bit);
                            shared.scrub_shard(shard);
                        }
                        _ => {
                            // Re-import the current raw image — the
                            // peer-repair write path.
                            let image = shared.export_shard_raw(shard);
                            shared.import_shard_raw(shard, &image).unwrap();
                        }
                    }
                }
            });
        }
        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                let shared = shared.clone();
                let mut rng = Lcg::seeded(seed ^ 0xBEEF ^ (r as u64) << 16);
                s.spawn(move || {
                    let mut seen: Vec<(usize, u64, u64)> = Vec::new();
                    let mut floor = [0u64; SHARDS];
                    let mut buf = vec![0.0f32; SHARD_WEIGHTS];
                    for _ in 0..READS_PER_READER {
                        let shard = rng.next() as usize % SHARDS;
                        let (weights, epoch) = if rng.next().is_multiple_of(2) {
                            let (w, e) = shared.read_shard_versioned(shard);
                            (w, e)
                        } else {
                            let e = shared.read_shard_into_versioned(shard, &mut buf);
                            (buf.clone(), e)
                        };
                        assert!(
                            epoch >= floor[shard],
                            "{kind:?}: shard {shard} epoch went backwards \
                             ({} after {})",
                            epoch,
                            floor[shard]
                        );
                        floor[shard] = epoch;
                        seen.push((shard, epoch, fingerprint(&weights)));
                    }
                    seen
                })
            })
            .collect();
        readers
            .into_iter()
            .map(|h| h.join().expect("reader panicked"))
            .collect()
    });

    // Cross-thread consistency: one plaintext per (shard, epoch).
    let mut by_version: HashMap<(usize, u64), u64> = HashMap::new();
    for (shard, epoch, print) in observations.into_iter().flatten() {
        if let Some(&prior) = by_version.get(&(shard, epoch)) {
            assert_eq!(
                prior, print,
                "{kind:?}: shard {shard} epoch {epoch} decoded two \
                 different bit patterns — torn or stale-epoch read"
            );
        } else {
            by_version.insert((shard, epoch), print);
        }
    }

    // Quiesced: every versioned read now reports the final epoch and
    // the exact bits a fresh decode returns.
    for shard in 0..SHARDS {
        let (weights, epoch) = shared.read_shard_versioned(shard);
        assert_eq!(epoch, shared.shard_epoch(shard));
        let mut buf = vec![0.0f32; weights.len()];
        assert_eq!(shared.read_shard_into_versioned(shard, &mut buf), epoch);
        assert_eq!(fingerprint(&buf), fingerprint(&weights));
    }
}

#[test]
fn versioned_reads_are_consistent_under_concurrent_mutation() {
    for kind in SubstrateKind::ALL {
        for seed in [0x0DDBA11, 0x5EED_F00D] {
            torture(kind, seed);
        }
    }
}
