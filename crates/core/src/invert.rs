//! Layer inversion — MILR's backward pass `f⁻¹(y, p) = x` (paper §IV).
//!
//! Recovery propagates the *succeeding* checkpoint backwards to the
//! faulty layer. Each crossing inverts one layer using its (presumed
//! good) parameters, augmented with regenerated PRNG dummy parameters
//! where the plan called for them.

use crate::artifacts::{inversion_dummy_params, Artifacts};
use crate::plan::{InversionPlan, ProtectionPlan};
use crate::semantics::SegmentView;
use crate::{MilrConfig, MilrError, Result};
use milr_linalg::{Mat, Qr};
use milr_nn::Layer;
use milr_tensor::{col2im_accumulate, Tensor};

/// Inverts layer `index`: given its output `y` (from backward
/// propagation), reconstructs its input.
///
/// # Errors
///
/// Returns [`MilrError::NotInvertible`] for pooling layers (the planner
/// never routes backward passes through them) and solver errors when the
/// augmented system is singular.
pub(crate) fn invert_layer(
    view: &SegmentView,
    plan: &ProtectionPlan,
    artifacts: &Artifacts,
    config: &MilrConfig,
    index: usize,
    y: &Tensor,
) -> Result<Tensor> {
    let layer = view.layer(index);
    match layer {
        Layer::Activation(_) | Layer::Dropout { .. } => Ok(y.clone()),
        Layer::Bias { bias } => {
            // x = y − b along the last axis.
            let c = bias.numel();
            let b = bias.data();
            let data: Vec<f32> = y
                .data()
                .iter()
                .enumerate()
                .map(|(i, &v)| v - b[i % c])
                .collect();
            Ok(Tensor::from_vec(data, y.shape().dims())?)
        }
        Layer::Flatten => {
            let mut dims = vec![y.shape().dim(0)];
            dims.extend_from_slice(view.shape_at(index));
            Ok(y.reshape(&dims)?)
        }
        Layer::ZeroPad2D { pad } => {
            let input = view.shape_at(index);
            crop(y, *pad, input)
        }
        Layer::Dense { weights } => invert_dense(
            weights,
            plan.layers[index].inversion,
            artifacts,
            config,
            index,
            y,
        ),
        Layer::Conv2D { filters, spec } => invert_conv(
            view,
            filters,
            spec,
            plan.layers[index].inversion,
            artifacts,
            config,
            index,
            y,
        ),
        Layer::MaxPool2D(_) | Layer::AvgPool2D(_) => Err(MilrError::NotInvertible {
            layer: index,
            kind: layer.kind_name().to_string(),
        }),
    }
}

fn crop(y: &Tensor, pad: usize, input: &[usize]) -> Result<Tensor> {
    let (b, h, w, c) = (y.shape().dim(0), input[0], input[1], input[2]);
    let nw = w + 2 * pad;
    let nh = h + 2 * pad;
    let mut out = Tensor::zeros(&[b, h, w, c]);
    let src = y.data();
    let dst = out.data_mut();
    for img in 0..b {
        for row in 0..h {
            let s = (img * nh * nw + (row + pad) * nw + pad) * c;
            let d = (img * h * w + row * w) * c;
            dst[d..d + w * c].copy_from_slice(&src[s..s + w * c]);
        }
    }
    Ok(out)
}

/// Dense backward pass: solve `x · W_aug = y_aug` row by row
/// (§IV-A-a). `W_aug` appends regenerated dummy columns when the plan
/// requires them; `y_aug` appends their stored golden outputs.
fn invert_dense(
    weights: &Tensor,
    inversion: InversionPlan,
    artifacts: &Artifacts,
    config: &MilrConfig,
    index: usize,
    y: &Tensor,
) -> Result<Tensor> {
    let n = weights.shape().dim(0);
    let (w_aug, y_aug): (Tensor, Tensor) = match inversion {
        InversionPlan::DummyData { extra } => {
            let cols = inversion_dummy_params(config, index, &[n, extra]);
            let stored = artifacts
                .dense_dummy_col_outputs
                .get(&index)
                .ok_or_else(|| {
                    MilrError::CorruptArtifacts(format!("missing dense dummy outputs {index}"))
                })?;
            (
                Tensor::hstack(&[weights, &cols])?,
                Tensor::hstack(&[y, stored])?,
            )
        }
        _ => (weights.clone(), y.clone()),
    };
    // Solve W_augᵀ xᵀ = y_augᵀ; factor once, one solve per batch row.
    let p_aug = w_aug.shape().dim(1);
    let wt = Mat::from_vec(w_aug.transpose()?.to_f64_vec(), p_aug, n)?;
    let qr = Qr::factor(&wt)?;
    let b = y.shape().dim(0);
    let mut out = Vec::with_capacity(b * n);
    for r in 0..b {
        let rhs: Vec<f64> = y_aug.row(r)?.iter().map(|&v| v as f64).collect();
        let x = qr.solve(&rhs)?;
        out.extend(x.iter().map(|&v| v as f32));
    }
    Ok(Tensor::from_vec(out, &[b, n])?)
}

/// Convolution backward pass (§IV-B-a): every output location gives `Y`
/// (+ dummy) equations over its `F²Z`-element receptive field; the patch
/// solutions are merged by averaging overlaps.
#[allow(clippy::too_many_arguments)]
fn invert_conv(
    view: &SegmentView,
    filters: &Tensor,
    spec: &milr_tensor::ConvSpec,
    inversion: InversionPlan,
    artifacts: &Artifacts,
    config: &MilrConfig,
    index: usize,
    y: &Tensor,
) -> Result<Tensor> {
    let input = view.shape_at(index);
    let (h, w, c) = (input[0], input[1], input[2]);
    let f = filters.shape().dim(0);
    let ny = filters.shape().dim(3);
    let unknowns = f * f * c;
    // Stack real and dummy filter banks into the equation matrix
    // (Y+extra, F²Z).
    let (eqs, dummy_out): (Tensor, Option<&Tensor>) = match inversion {
        InversionPlan::DummyData { extra } => {
            let dummies = inversion_dummy_params(config, index, &[f, f, c, extra]);
            let real = filters.reshape(&[unknowns, ny])?;
            let dum = dummies.reshape(&[unknowns, extra])?;
            let stored = artifacts.conv_dummy_outputs.get(&index).ok_or_else(|| {
                MilrError::CorruptArtifacts(format!("missing conv dummy outputs {index}"))
            })?;
            (Tensor::hstack(&[&real, &dum])?.transpose()?, Some(stored))
        }
        _ => (filters.reshape(&[unknowns, ny])?.transpose()?, None),
    };
    let total_eqs = eqs.shape().dim(0);
    if total_eqs < unknowns {
        return Err(MilrError::NotInvertible {
            layer: index,
            kind: format!("Conv2D with {total_eqs} equations for {unknowns} unknowns"),
        });
    }
    let a = Mat::from_vec(eqs.to_f64_vec(), total_eqs, unknowns)?;
    let qr = Qr::factor(&a)?;
    let b = y.shape().dim(0);
    let (gh, gw) = (y.shape().dim(1), y.shape().dim(2));
    let mut images = Vec::with_capacity(b * h * w * c);
    for img in 0..b {
        let mut patches = Vec::with_capacity(gh * gw * unknowns);
        for i in 0..gh {
            for j in 0..gw {
                let mut rhs = Vec::with_capacity(total_eqs);
                for k in 0..ny {
                    rhs.push(y.at(&[img, i, j, k])? as f64);
                }
                if let Some(d) = dummy_out {
                    let extra = d.shape().dim(3);
                    for k in 0..extra {
                        rhs.push(d.at(&[img, i, j, k])? as f64);
                    }
                }
                let patch = qr.solve(&rhs)?;
                patches.extend(patch.iter().map(|&v| v as f32));
            }
        }
        let patches = Tensor::from_vec(patches, &[gh * gw, unknowns])?;
        let image = col2im_accumulate(&patches, h, w, c, spec)?;
        images.extend_from_slice(image.data());
    }
    Ok(Tensor::from_vec(images, &[b, h, w, c])?)
}

/// Backward-propagates `y` from checkpoint position `to` down to become
/// the output of layer `target`, inverting layers `to-1 .. target+1`.
pub(crate) fn backward_to(
    view: &SegmentView,
    plan: &ProtectionPlan,
    artifacts: &Artifacts,
    config: &MilrConfig,
    y: &Tensor,
    to: usize,
    target: usize,
) -> Result<Tensor> {
    let mut cur = y.clone();
    for j in ((target + 1)..to).rev() {
        cur = invert_layer(view, plan, artifacts, config, j, &cur)?;
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts::{golden_input, Artifacts};
    use crate::semantics::{milr_forward, milr_forward_range};
    use milr_nn::{Activation, Sequential};
    use milr_tensor::{ConvSpec, Padding, TensorRng};

    fn view(m: &Sequential) -> SegmentView {
        SegmentView::from_model(m, 0, m.len())
    }

    fn protected(
        build: impl FnOnce(&mut Sequential, &mut TensorRng),
        input_shape: Vec<usize>,
    ) -> (Sequential, ProtectionPlan, Artifacts, MilrConfig) {
        let mut rng = TensorRng::new(17);
        let mut m = Sequential::new(input_shape);
        build(&mut m, &mut rng);
        let cfg = MilrConfig::default();
        let plan = ProtectionPlan::build(&m, &cfg).unwrap();
        let art = Artifacts::build(&m, &plan, &cfg).unwrap();
        (m, plan, art, cfg)
    }

    #[test]
    fn bias_and_shape_layers_invert_exactly() {
        let (m, plan, art, cfg) = protected(
            |m, rng| {
                m.push(
                    Layer::conv2d_random(
                        1,
                        1,
                        2,
                        ConvSpec::new(1, 1, Padding::Valid).unwrap(),
                        rng,
                    )
                    .unwrap(),
                )
                .unwrap();
                m.push(Layer::Bias {
                    bias: Tensor::from_vec(vec![0.5, -1.5], &[2]).unwrap(),
                })
                .unwrap();
                m.push(Layer::Activation(Activation::Relu)).unwrap();
                m.push(Layer::Flatten).unwrap();
            },
            vec![3, 3, 1],
        );
        let x0 = golden_input(&m, &cfg);
        // Forward to the end, then invert back to the conv output.
        let out = milr_forward_range(&view(&m), &x0, 0, 4).unwrap();
        let back = backward_to(&view(&m), &plan, &art, &cfg, &out, 4, 0).unwrap();
        let conv_out = milr_forward(&m.layers()[0], &x0).unwrap();
        assert!(back.approx_eq(&conv_out, 1e-6, 1e-6));
    }

    #[test]
    fn wide_dense_inverts_natively() {
        let (m, plan, art, cfg) = protected(
            |m, rng| {
                m.push(Layer::dense_random(4, 6, rng).unwrap()).unwrap();
            },
            vec![4],
        );
        let x0 = golden_input(&m, &cfg);
        let y = milr_forward(&m.layers()[0], &x0).unwrap();
        let back = invert_layer(&view(&m), &plan, &art, &cfg, 0, &y).unwrap();
        assert!(back.approx_eq(&x0, 1e-5, 1e-6), "{back} vs {x0}");
    }

    #[test]
    fn narrow_dense_inverts_with_dummy_columns() {
        // Second dense is narrow (P < N) and needs dummy columns.
        let (m, plan, art, cfg) = protected(
            |m, rng| {
                m.push(Layer::dense_random(6, 6, rng).unwrap()).unwrap();
                m.push(Layer::dense_random(6, 2, rng).unwrap()).unwrap();
            },
            vec![6],
        );
        assert_eq!(
            plan.layers[1].inversion,
            InversionPlan::DummyData { extra: 4 }
        );
        let x0 = golden_input(&m, &cfg);
        let mid = milr_forward(&m.layers()[0], &x0).unwrap();
        let y = milr_forward(&m.layers()[1], &mid).unwrap();
        let back = invert_layer(&view(&m), &plan, &art, &cfg, 1, &y).unwrap();
        assert!(back.approx_eq(&mid, 1e-4, 1e-5));
    }

    #[test]
    fn conv_with_enough_filters_inverts_natively() {
        // 1-channel 2x2 filters (F²Z = 4) with 6 filters: Y >= F²Z.
        let (m, plan, art, cfg) = protected(
            |m, rng| {
                m.push(
                    Layer::conv2d_random(
                        2,
                        1,
                        6,
                        ConvSpec::new(2, 1, Padding::Valid).unwrap(),
                        rng,
                    )
                    .unwrap(),
                )
                .unwrap();
                m.push(
                    Layer::conv2d_random(
                        2,
                        6,
                        24,
                        ConvSpec::new(2, 1, Padding::Valid).unwrap(),
                        rng,
                    )
                    .unwrap(),
                )
                .unwrap();
            },
            vec![5, 5, 1],
        );
        // Layer 1 has 24 filters >= F²Z = 24: native.
        assert_eq!(plan.layers[1].inversion, InversionPlan::Native);
        let x0 = golden_input(&m, &cfg);
        let mid = milr_forward(&m.layers()[0], &x0).unwrap();
        let y = milr_forward(&m.layers()[1], &mid).unwrap();
        let back = invert_layer(&view(&m), &plan, &art, &cfg, 1, &y).unwrap();
        assert!(
            back.approx_eq(&mid, 1e-3, 1e-4),
            "max diff {:?}",
            back.max_abs_diff(&mid)
        );
    }

    #[test]
    fn conv_with_few_filters_inverts_with_dummy_filters() {
        // Second conv has 3 filters < F²Z = 2*2*4 = 16 -> dummy filters
        // (output 4x4x? -> dummy cost 16·13=208 vs ckpt 5·5·4=100 ->
        // checkpointed instead; force dummy by making input bigger).
        let (m, plan, art, cfg) = protected(
            |m, rng| {
                m.push(
                    Layer::conv2d_random(
                        2,
                        1,
                        4,
                        ConvSpec::new(2, 1, Padding::Valid).unwrap(),
                        rng,
                    )
                    .unwrap(),
                )
                .unwrap();
                m.push(
                    Layer::conv2d_random(
                        2,
                        4,
                        14,
                        ConvSpec::new(2, 1, Padding::Valid).unwrap(),
                        rng,
                    )
                    .unwrap(),
                )
                .unwrap();
            },
            vec![4, 4, 1],
        );
        // Layer 1: F²Z = 16 > Y = 14 -> extra 2; dummy cost 2·G²=8 < ckpt 36.
        assert_eq!(
            plan.layers[1].inversion,
            InversionPlan::DummyData { extra: 2 }
        );
        let x0 = golden_input(&m, &cfg);
        let mid = milr_forward(&m.layers()[0], &x0).unwrap();
        let y = milr_forward(&m.layers()[1], &mid).unwrap();
        let back = invert_layer(&view(&m), &plan, &art, &cfg, 1, &y).unwrap();
        assert!(
            back.approx_eq(&mid, 1e-3, 1e-4),
            "max diff {:?}",
            back.max_abs_diff(&mid)
        );
    }

    #[test]
    fn pooling_refuses_inversion() {
        let (m, plan, art, cfg) = protected(
            |m, rng| {
                m.push(
                    Layer::conv2d_random(
                        1,
                        1,
                        1,
                        ConvSpec::new(1, 1, Padding::Valid).unwrap(),
                        rng,
                    )
                    .unwrap(),
                )
                .unwrap();
                m.push(Layer::MaxPool2D(milr_tensor::PoolSpec::new(2, 2).unwrap()))
                    .unwrap();
            },
            vec![4, 4, 1],
        );
        let y = Tensor::zeros(&[1, 2, 2, 1]);
        let err = invert_layer(&view(&m), &plan, &art, &cfg, 1, &y).unwrap_err();
        assert!(matches!(err, MilrError::NotInvertible { layer: 1, .. }));
    }

    #[test]
    fn zero_pad_inverts_by_cropping() {
        let (m, plan, art, cfg) = protected(
            |m, rng| {
                m.push(
                    Layer::conv2d_random(
                        1,
                        1,
                        1,
                        ConvSpec::new(1, 1, Padding::Valid).unwrap(),
                        rng,
                    )
                    .unwrap(),
                )
                .unwrap();
                m.push(Layer::ZeroPad2D { pad: 2 }).unwrap();
            },
            vec![3, 3, 1],
        );
        let x0 = golden_input(&m, &cfg);
        let mid = milr_forward(&m.layers()[0], &x0).unwrap();
        let y = milr_forward(&m.layers()[1], &mid).unwrap();
        let back = invert_layer(&view(&m), &plan, &art, &cfg, 1, &y).unwrap();
        assert_eq!(back, mid);
    }
}
