//! Parameter solving — MILR's recovery function `R(x, y) = p`
//! (paper §IV).
//!
//! Given the golden input (forward-propagated from the preceding
//! checkpoint) and golden output (inverse-propagated from the succeeding
//! checkpoint) of a faulty layer, these solvers reconstruct its
//! parameters. All arithmetic is `f64`; results are rounded to the `f32`
//! weights they replace.

use crate::artifacts::{dense_dummy_rows, filter_zy_slice, Artifacts};
use crate::plan::SolvingPlan;
use crate::{MilrConfig, MilrError, Result, WeightGrid};
use milr_linalg::{min_norm_solve, ridge_solve, Mat, Qr};
use milr_tensor::{im2col, ConvSpec, Tensor};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of f32 ulp-walk CRC snap searches entered since start-up (or
/// the last [`reset_ulp_snap_searches`]). Quantized weight grids snap
/// solver output exactly and never enter the walk, which this counter
/// lets tests and benchmarks prove.
static ULP_SNAP_SEARCHES: AtomicU64 = AtomicU64::new(0);

/// Reads the global ulp-snap search counter.
pub fn ulp_snap_searches() -> u64 {
    ULP_SNAP_SEARCHES.load(Ordering::Relaxed)
}

/// Resets the global ulp-snap search counter to zero.
pub fn reset_ulp_snap_searches() {
    ULP_SNAP_SEARCHES.store(0, Ordering::Relaxed)
}

/// Relative Tikhonov strength of the last-resort solver.
const RIDGE_LAMBDA: f64 = 1e-10;

/// Solves `A·x ≈ b` by the sturdiest route available: QR when the
/// system is (numerically) full rank, minimum-norm for wide systems,
/// Tikhonov-regularized normal equations when both report rank
/// deficiency. Returns the solution and whether an approximate
/// (non-identifying) path was taken.
fn robust_solve(a: &Mat, b: &[f64]) -> Result<(Vec<f64>, bool)> {
    if a.rows() >= a.cols() {
        if let Ok(qr) = Qr::factor(a) {
            if let Ok(x) = qr.solve(b) {
                return Ok((x, false));
            }
        }
    } else if let Ok(x) = min_norm_solve(a, b) {
        return Ok((x, true));
    }
    Ok((ridge_solve(a, b, RIDGE_LAMBDA)?, true))
}

/// How a layer's parameters were recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveOutcome {
    /// Exactly-determined or over-determined system: full recovery.
    Full,
    /// CRC-guided partial recovery: only the flagged weights were
    /// re-solved.
    Partial {
        /// Number of weights re-solved.
        solved: usize,
    },
    /// Under-determined even after CRC reduction: minimum-norm
    /// least-squares approximation (whole-layer corruption of a
    /// partial-recoverability conv layer, §V-B).
    MinNorm {
        /// Number of unknowns in the approximate solve.
        unknowns: usize,
    },
}

/// Recovers a dense layer's weight matrix from golden input/output
/// (§IV-A-b). `x` is `(B, N)`, `y` is `(B, P)`; PRNG dummy rows and
/// their stored outputs complete the system when `B < N`.
// The argument list is the full recovery context (anchors, plan,
// artifacts, geometry); bundling it into a struct would be used once.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_dense(
    x: &Tensor,
    y: &Tensor,
    plan: SolvingPlan,
    artifacts: &Artifacts,
    config: &MilrConfig,
    index: usize,
    n: usize,
    p: usize,
) -> Result<(Tensor, SolveOutcome)> {
    let SolvingPlan::DenseFull { dummy_rows } = plan else {
        return Err(MilrError::CorruptArtifacts(format!(
            "layer {index} solving plan is not dense"
        )));
    };
    let (x_aug, y_aug) = if dummy_rows >= n {
        // Self-recovery extension: the dummy system alone has N golden
        // equations, so the (possibly propagation-polluted) real rows
        // are left out entirely.
        let dummy_x = dense_dummy_rows(config, index, dummy_rows, n);
        let dummy_y = artifacts.dense_dummy_outputs.get(&index).ok_or_else(|| {
            MilrError::CorruptArtifacts(format!("missing dense dummy outputs {index}"))
        })?;
        (dummy_x, dummy_y.clone())
    } else if dummy_rows > 0 {
        let dummy_x = dense_dummy_rows(config, index, dummy_rows, n);
        let dummy_y = artifacts.dense_dummy_outputs.get(&index).ok_or_else(|| {
            MilrError::CorruptArtifacts(format!("missing dense dummy outputs {index}"))
        })?;
        (
            Tensor::vstack(&[x, &dummy_x])?,
            Tensor::vstack(&[y, dummy_y])?,
        )
    } else {
        (x.clone(), y.clone())
    };
    let m_aug = x_aug.shape().dim(0);
    let a = Mat::from_vec(x_aug.to_f64_vec(), m_aug, n)?;
    let qr = Qr::factor(&a)?;
    // One solve per output column; assembled column-major then
    // transposed into the (N, P) weight layout.
    let mut weights = vec![0.0f32; n * p];
    for col in 0..p {
        let rhs: Vec<f64> = y_aug.col(col)?.iter().map(|&v| v as f64).collect();
        let w = qr.solve(&rhs)?;
        for (row, &v) in w.iter().enumerate() {
            weights[row * p + col] = config.weight_grid.snap(v as f32);
        }
    }
    Ok((Tensor::from_vec(weights, &[n, p])?, SolveOutcome::Full))
}

/// Builds the convolution recovery system: coefficient matrix
/// `(B·G², F²Z)` from stacked im2col patches and RHS matrix `(B·G², Y)`
/// from the golden outputs.
fn conv_system(
    x: &Tensor,
    y: &Tensor,
    spec: &ConvSpec,
    filter_dims: &[usize],
) -> Result<(Mat, Mat)> {
    let b = x.shape().dim(0);
    let (h, w, c) = (x.shape().dim(1), x.shape().dim(2), x.shape().dim(3));
    let unknowns = filter_dims[0] * filter_dims[1] * filter_dims[2];
    let ny = filter_dims[3];
    let (gh, gw) = (y.shape().dim(1), y.shape().dim(2));
    let rows = b * gh * gw;
    let mut a = Vec::with_capacity(rows * unknowns);
    let per_img = h * w * c;
    for img in 0..b {
        let image = Tensor::from_vec(
            x.data()[img * per_img..(img + 1) * per_img].to_vec(),
            &[h, w, c],
        )?;
        let cols = im2col(&image, spec)?;
        a.extend(cols.data().iter().map(|&v| v as f64));
    }
    let y_mat = Mat::from_vec(y.to_f64_vec(), rows, ny)?;
    Ok((Mat::from_vec(a, rows, unknowns)?, y_mat))
}

/// CRC-guided partial recovery of a convolution layer (§IV-B-b/c).
///
/// The stored 2-D CRC grids pinpoint which weights changed; only those
/// become unknowns, shrinking each filter's system to (typically) far
/// fewer than `B·G²` equations. When a filter's flagged set still
/// exceeds the equation count — whole-layer corruption — the solver
/// falls back to the minimum-norm least-squares solution.
pub(crate) fn solve_conv_partial(
    x: &Tensor,
    y: &Tensor,
    current: &Tensor,
    spec: &ConvSpec,
    artifacts: &Artifacts,
    config: &MilrConfig,
    index: usize,
) -> Result<(Tensor, SolveOutcome)> {
    let grid = config.weight_grid;
    let dims = current.shape().dims().to_vec();
    let (f, z, ny) = (dims[0], dims[2], dims[3]);
    let grids = artifacts.crc_grids.get(&index).ok_or_else(|| {
        MilrError::CorruptArtifacts(format!("missing CRC grids for layer {index}"))
    })?;
    // Locate suspect weights with the 2-D CRC. Coordinates are flat
    // (f1,f2,z) indices; the iteration order keeps each filter's list
    // ascending, which the skip-merge below relies on.
    let mut suspects: Vec<Vec<usize>> = vec![Vec::new(); ny];
    for f1 in 0..f {
        for f2 in 0..f {
            let grid = &grids[f1 * f + f2];
            let slice = filter_zy_slice(current, f1, f2);
            for (zz, yy) in grid.locate_errors(&slice) {
                let coord = (f1 * f + f2) * z + zz;
                suspects[yy].push(coord);
            }
        }
    }
    let total_flagged: usize = suspects.iter().map(Vec::len).sum();
    let unknowns = f * f * z;
    if total_flagged == 0 {
        // Detection flagged the layer but every CRC matches: the
        // weights equal the golden fingerprint (up to a CRC collision),
        // so overwriting them could only do harm. Leave them be.
        return Ok((current.clone(), SolveOutcome::Full));
    }
    let (a, y_mat) = conv_system(x, y, spec, &dims)?;
    let rows = a.rows();
    let mut filters = current.clone();
    let mut solved = 0usize;
    let mut approximate = false;
    // Which filters took an approximate (min-norm/ridge) route: their
    // weights sit far from any ulp neighbourhood, so the CRC snap below
    // skips them while still snapping exactly-solved filters.
    let mut approx_filters = vec![false; ny];
    for (k, coords) in suspects.iter().enumerate() {
        if coords.is_empty() {
            continue;
        }
        // RHS: golden output minus the contribution of trusted weights.
        let mut rhs = y_mat.col(k);
        #[allow(clippy::needless_range_loop)] // r indexes rhs and `a` rows together
        for r in 0..rows {
            let mut acc = 0.0f64;
            let arow = a.row(r);
            let mut ci = 0usize;
            for (pos, &av) in arow.iter().enumerate() {
                // Skip flagged coordinates (they are the unknowns).
                if ci < coords.len() && coords[ci] == pos {
                    ci += 1;
                    continue;
                }
                acc += av * filters.data()[pos * ny + k] as f64;
            }
            rhs[r] -= acc;
        }
        // Reduced coefficient matrix: only the flagged columns.
        let mut sub = Mat::zeros(rows, coords.len());
        for r in 0..rows {
            let arow = a.row(r);
            for (j, &pos) in coords.iter().enumerate() {
                sub.set(r, j, arow[pos]);
            }
        }
        let (solution, approx) = robust_solve(&sub, &rhs)?;
        approximate |= approx;
        approx_filters[k] = approx;
        for (j, &pos) in coords.iter().enumerate() {
            filters.data_mut()[pos * ny + k] = grid.snap(solution[j] as f32);
        }
        solved += coords.len();
    }
    // Snap each re-solved weight to the golden bits: a well-conditioned
    // f64 solve rounds to within a few ulps of the original f32;
    // walking the float neighbourhood outward until the stored 2-D CRC
    // matches recovers the exact bit pattern. The search radius covers
    // the rounding the checkpoint propagation can introduce (inverse
    // passes re-round to f32 at every layer crossing).
    //
    // Several flagged cells can share one CRC chunk — a single garbled
    // cipher block flags a whole row chunk — and then no cell can
    // satisfy *both* its codes while its chunk-mates are still
    // approximate. The snap therefore runs to a fixpoint, accepting a
    // candidate on any axis whose chunk holds no other unresolved cell
    // (one CRC-32 match is already a 2⁻³² certificate); each snapped
    // cell unblocks its chunk-mates for the next round, and the final
    // whole-grid verification below still checks every code.
    let mut unresolved: Vec<(usize, usize, usize)> = Vec::new(); // (g, zz, k)
    for (k, coords) in suspects.iter().enumerate() {
        if approx_filters[k] {
            continue;
        }
        for &pos in coords {
            unresolved.push((pos / z, pos % z, k));
        }
    }
    let group = grids.first().map_or(4, |g| g.config().group());
    loop {
        let mut next = Vec::with_capacity(unresolved.len());
        let mut progressed = false;
        for idx in 0..unresolved.len() {
            let (g, zz, k) = unresolved[idx];
            let row_free = !unresolved.iter().enumerate().any(|(j, &(g2, z2, k2))| {
                j != idx && g2 == g && z2 == zz && k2 / group == k / group
            });
            let col_free = !unresolved.iter().enumerate().any(|(j, &(g2, z2, k2))| {
                j != idx && g2 == g && k2 == k && z2 / group == zz / group
            });
            let consistent = |slice: &[f32]| match (row_free, col_free) {
                (true, true) => grids[g].cell_consistent(slice, zz, k),
                (true, false) => grids[g].row_consistent(slice, zz, k),
                (false, true) => grids[g].col_consistent(slice, zz, k),
                (false, false) => false,
            };
            if !row_free && !col_free {
                next.push((g, zz, k));
                continue;
            }
            let mut slice = filter_zy_slice(&filters, g / f, g % f);
            if consistent(&slice) {
                progressed = true;
                continue;
            }
            let pos = g * z + zz;
            let base = filters.data()[pos * ny + k];
            let mut snapped = false;
            if !grid.is_exact() {
                // Only the f32 grid pays the ulp walk; quantized grids
                // step their (tiny) lattice neighbourhood instead.
                ULP_SNAP_SEARCHES.fetch_add(1, Ordering::Relaxed);
            }
            'search: for delta in 0..=grid.snap_radius() {
                for neg in [false, true] {
                    let Some(cand) = grid.candidate(base, delta, neg) else {
                        continue;
                    };
                    slice[zz * ny + k] = cand;
                    if consistent(&slice) {
                        filters.data_mut()[pos * ny + k] = cand;
                        snapped = true;
                        break 'search;
                    }
                }
            }
            progressed |= snapped;
            if !snapped {
                next.push((g, zz, k));
            }
        }
        unresolved = next;
        if unresolved.is_empty() || !progressed {
            break;
        }
    }
    // Verify the healed bank against the golden CRC fingerprint: an
    // exact re-solve reproduces the original bits; a rank-deficient
    // system (e.g. input produced by an upstream convolution) yields a
    // consistent-but-different bank that the grids expose.
    let verified = (0..f * f).all(|g| {
        let slice = filter_zy_slice(&filters, g / f, g % f);
        grids[g].is_clean(&slice)
    });
    let outcome = if approximate {
        // Rank-deficient somewhere: the bank reproduces the golden flow
        // but individual weights are not identifiable (the paper's
        // whole-layer partial-recoverability limit).
        SolveOutcome::MinNorm {
            unknowns: total_flagged.min(unknowns * ny),
        }
    } else if verified && solved == unknowns * ny {
        // Every weight re-solved and the CRC fingerprint matches
        // bit-for-bit: certified full recovery.
        SolveOutcome::Full
    } else {
        // Exact reduced solve; `verified` is false only when a solved
        // weight is a few ulps off the golden bits (rounding through
        // the f32 flow), which is immaterial to accuracy.
        SolveOutcome::Partial { solved }
    };
    Ok((filters, outcome))
}

/// Recovers a bias layer (§IV-E-b): `p = y − x`, deduplicated across the
/// positions that share each bias element. The estimate is taken from
/// the position with the smallest input magnitude, where the `f32`
/// rounding of `x + b` preserved the most bits of `b`.
pub(crate) fn solve_bias(
    x: &Tensor,
    y: &Tensor,
    channels: usize,
    grid: WeightGrid,
) -> Result<(Tensor, SolveOutcome)> {
    if x.shape() != y.shape() {
        return Err(MilrError::ModelMismatch(format!(
            "bias recovery shapes differ: {} vs {}",
            x.shape(),
            y.shape()
        )));
    }
    let mut best_mag = vec![f32::INFINITY; channels];
    let mut bias = vec![0.0f32; channels];
    for (i, (&xv, &yv)) in x.data().iter().zip(y.data().iter()).enumerate() {
        let c = i % channels;
        let mag = xv.abs();
        if mag < best_mag[c] {
            best_mag[c] = mag;
            bias[c] = grid.snap(yv - xv);
        }
    }
    Ok((Tensor::from_vec(bias, &[channels])?, SolveOutcome::Full))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts::{golden_input, Artifacts};
    use crate::plan::ProtectionPlan;
    use crate::semantics::milr_forward;
    use milr_nn::{Layer, Sequential};
    use milr_tensor::{Padding, TensorRng};

    #[test]
    fn dense_recovery_is_exact() {
        let mut rng = TensorRng::new(5);
        let mut m = Sequential::new(vec![8]);
        m.push(Layer::dense_random(8, 5, &mut rng).unwrap())
            .unwrap();
        let cfg = MilrConfig::default();
        let plan = ProtectionPlan::build(&m, &cfg).unwrap();
        let art = Artifacts::build(&m, &plan, &cfg).unwrap();
        let x = golden_input(&m, &cfg);
        let y = milr_forward(&m.layers()[0], &x).unwrap();
        let golden = m.layers()[0].params().unwrap().clone();
        let (recovered, outcome) =
            solve_dense(&x, &y, plan.layers[0].solving.unwrap(), &art, &cfg, 0, 8, 5).unwrap();
        assert_eq!(outcome, SolveOutcome::Full);
        assert!(
            recovered.approx_eq(&golden, 1e-5, 1e-6),
            "max diff {:?}",
            recovered.max_abs_diff(&golden)
        );
    }

    #[test]
    fn conv_partial_recovers_flagged_weights() {
        let mut rng = TensorRng::new(7);
        let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
        // 8 channels in: F²Z = 72 > G² = 36 -> partial recoverability.
        let mut m = Sequential::new(vec![8, 8, 8]);
        m.push(Layer::conv2d_random(3, 8, 4, spec, &mut rng).unwrap())
            .unwrap();
        let cfg = MilrConfig::default();
        let plan = ProtectionPlan::build(&m, &cfg).unwrap();
        assert_eq!(plan.layers[0].solving, Some(SolvingPlan::ConvPartial));
        let art = Artifacts::build(&m, &plan, &cfg).unwrap();
        let x = golden_input(&m, &cfg);
        let y = milr_forward(&m.layers()[0], &x).unwrap();
        let golden = m.layers()[0].params().unwrap().clone();
        // Corrupt a handful of weights.
        let mut corrupted = golden.clone();
        for &i in &[3usize, 77, 150, 200] {
            corrupted.data_mut()[i] += 2.5;
        }
        let (recovered, outcome) =
            solve_conv_partial(&x, &y, &corrupted, &spec, &art, &cfg, 0).unwrap();
        match outcome {
            SolveOutcome::Partial { solved } => assert!(solved >= 4, "solved {solved}"),
            other => panic!("expected partial, got {other:?}"),
        }
        assert!(
            recovered.approx_eq(&golden, 1e-3, 1e-4),
            "max diff {:?}",
            recovered.max_abs_diff(&golden)
        );
    }

    #[test]
    fn conv_partial_whole_layer_falls_back_to_min_norm() {
        let mut rng = TensorRng::new(8);
        let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
        let mut m = Sequential::new(vec![6, 6, 8]);
        m.push(Layer::conv2d_random(3, 8, 3, spec, &mut rng).unwrap())
            .unwrap();
        let cfg = MilrConfig::default();
        let plan = ProtectionPlan::build(&m, &cfg).unwrap();
        let art = Artifacts::build(&m, &plan, &cfg).unwrap();
        let x = golden_input(&m, &cfg);
        let y = milr_forward(&m.layers()[0], &x).unwrap();
        let golden = m.layers()[0].params().unwrap().clone();
        // Corrupt everything (whole-layer attack).
        let mut corrupted = golden.clone();
        for v in corrupted.data_mut() {
            *v += 1.0;
        }
        let (recovered, outcome) =
            solve_conv_partial(&x, &y, &corrupted, &spec, &art, &cfg, 0).unwrap();
        assert!(matches!(outcome, SolveOutcome::MinNorm { .. }));
        // Min-norm cannot be exact (under-determined) but must
        // reproduce the layer's golden outputs on the golden input.
        let mut healed_layer = m.layers()[0].clone();
        *healed_layer.params_mut().unwrap() = recovered;
        let y_after = milr_forward(&healed_layer, &x).unwrap();
        assert!(
            y_after.approx_eq(&y, 1e-3, 1e-3),
            "outputs diverge: {:?}",
            y_after.max_abs_diff(&y)
        );
    }

    #[test]
    fn bias_recovery_matches() {
        let x = TensorRng::new(9).uniform_tensor(&[2, 3, 4]);
        let bias = Tensor::from_vec(vec![0.25, -0.5, 1.0, 2.0], &[4]).unwrap();
        let layer = Layer::Bias { bias: bias.clone() };
        let y = layer.forward(&x).unwrap();
        let (recovered, outcome) = solve_bias(&x, &y, 4, WeightGrid::F32).unwrap();
        assert_eq!(outcome, SolveOutcome::Full);
        assert!(recovered.approx_eq(&bias, 1e-6, 1e-6));
    }

    #[test]
    fn bias_recovery_validates_shapes() {
        let x = Tensor::zeros(&[2, 4]);
        let y = Tensor::zeros(&[2, 5]);
        assert!(solve_bias(&x, &y, 4, WeightGrid::F32).is_err());
    }
}
