//! MILR error-detection phase (paper §III, Figure 2).
//!
//! Each parameterized layer is replayed on its private seeded
//! pseudo-random input and the output is compared against the stored
//! partial checkpoint. The per-layer inputs are independent, so an
//! erroneous layer cannot cascade mismatches into other layers' checks.
//! Bias layers use the stored parameter-sum scheme (§IV-E-c).
//!
//! Detection is deliberately lightweight and therefore imperfect: "they
//! are only detected when they have a meaningful impact on the output of
//! the layer" (§V-B). The tolerance lives in
//! [`MilrConfig`](crate::MilrConfig).

use crate::artifacts::{conv_probe_location, detection_input, Artifacts};
use crate::semantics::milr_forward;
use crate::{MilrConfig, MilrError, Result};
use milr_nn::{Layer, Sequential};
use rayon::prelude::*;
use std::time::Duration;

/// Result of checking one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCheck {
    /// Layer index.
    pub layer: usize,
    /// Layer kind name.
    pub kind: String,
    /// True when the layer's check mismatched (errors present).
    pub flagged: bool,
    /// Worst relative deviation observed (0 for clean layers).
    pub max_deviation: f32,
}

/// Output of the detection phase.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionReport {
    /// Indices of layers flagged as erroneous, ascending.
    pub flagged: Vec<usize>,
    /// Every per-layer check performed.
    pub checks: Vec<LayerCheck>,
    /// Wall-clock duration of the detection pass (the paper's
    /// "identification time", Table X).
    pub elapsed: Duration,
}

impl DetectionReport {
    /// True when no layer was flagged.
    pub fn is_clean(&self) -> bool {
        self.flagged.is_empty()
    }
}

/// Checks one parameterized layer against its stored artifact.
///
/// Pure in the model: reads only layer `i`'s parameters, its private
/// seeded detection input, and the stored artifacts — which is what
/// makes per-layer checks freely parallelizable with bit-identical
/// results.
fn check_layer(
    model: &Sequential,
    artifacts: &Artifacts,
    config: &MilrConfig,
    i: usize,
) -> Result<LayerCheck> {
    let layer = &model.layers()[i];
    match layer {
        Layer::Conv2D { .. } => {
            let stored = artifacts.partial_checkpoints.get(&i).ok_or_else(|| {
                MilrError::CorruptArtifacts(format!("missing partial checkpoint {i}"))
            })?;
            let det = detection_input(model, config, i);
            let out = milr_forward(layer, &det)?;
            let (gh, gw) = (out.shape().dim(1), out.shape().dim(2));
            let (ci, cj) = conv_probe_location(gh, gw);
            let y = out.shape().dim(3);
            if y != stored.len() {
                return Err(MilrError::ModelMismatch(format!(
                    "layer {i}: {y} filters but {} stored probes",
                    stored.len()
                )));
            }
            let mut dev = 0.0f32;
            for (k, &golden) in stored.iter().enumerate() {
                let now = out.at(&[0, ci, cj, k])?;
                dev = dev.max(relative_deviation(now, golden));
            }
            Ok(make_check(i, layer, dev, config))
        }
        Layer::Dense { .. } => {
            let stored = artifacts.partial_checkpoints.get(&i).ok_or_else(|| {
                MilrError::CorruptArtifacts(format!("missing partial checkpoint {i}"))
            })?;
            let det = detection_input(model, config, i);
            let out = milr_forward(layer, &det)?;
            let row = out.row(0)?;
            if row.len() != stored.len() {
                return Err(MilrError::ModelMismatch(format!(
                    "layer {i}: {} columns but {} stored probes",
                    row.len(),
                    stored.len()
                )));
            }
            let mut dev = 0.0f32;
            for (now, &golden) in row.iter().zip(stored.iter()) {
                dev = dev.max(relative_deviation(*now, golden));
            }
            Ok(make_check(i, layer, dev, config))
        }
        Layer::Bias { bias } => {
            let stored = artifacts
                .bias_sums
                .get(&i)
                .ok_or_else(|| MilrError::CorruptArtifacts(format!("missing bias sum {i}")))?;
            let now = bias.sum();
            let dev = relative_deviation(now as f32, *stored as f32);
            Ok(make_check(i, layer, dev, config))
        }
        other => Err(MilrError::ModelMismatch(format!(
            "layer {i} ({}) has no detection check",
            other.kind_name()
        ))),
    }
}

/// Runs the detection phase against the (possibly corrupted) model.
///
/// With `config.parallel` the per-layer checks run concurrently across
/// layers; results (flags, deviations, ordering) are bit-identical to
/// the serial path because every check only reads its own layer.
pub(crate) fn run_detection(
    model: &Sequential,
    artifacts: &Artifacts,
    config: &MilrConfig,
) -> Result<DetectionReport> {
    let checked: Vec<usize> = model
        .layers()
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            matches!(
                l,
                Layer::Conv2D { .. } | Layer::Dense { .. } | Layer::Bias { .. }
            )
        })
        .map(|(i, _)| i)
        .collect();
    run_detection_subset(model, artifacts, config, &checked)
}

/// Detection over an explicit layer subset — the incremental/online
/// entry point behind [`Milr::detect_layers`](crate::Milr::detect_layers).
/// Per-layer checks are independent, so any chunking of the checkable
/// layers flags the union of what one full pass would.
pub(crate) fn run_detection_subset(
    model: &Sequential,
    artifacts: &Artifacts,
    config: &MilrConfig,
    layers: &[usize],
) -> Result<DetectionReport> {
    let start = std::time::Instant::now();
    let mut checked: Vec<usize> = layers.to_vec();
    checked.sort_unstable();
    checked.dedup();
    if let Some(&out_of_range) = checked.iter().find(|&&i| i >= model.len()) {
        return Err(MilrError::ModelMismatch(format!(
            "detection subset index {out_of_range} out of range for {} layers",
            model.len()
        )));
    }
    let results: Vec<Result<LayerCheck>> = if config.parallel && checked.len() > 1 {
        checked
            .par_iter()
            .map(|&i| check_layer(model, artifacts, config, i))
            .collect()
    } else {
        checked
            .iter()
            .map(|&i| check_layer(model, artifacts, config, i))
            .collect()
    };
    let mut checks = Vec::with_capacity(results.len());
    let mut flagged = Vec::new();
    // Errors surface in ascending layer order, matching the serial
    // short-circuit behaviour.
    for result in results {
        let check = result?;
        if check.flagged {
            flagged.push(check.layer);
        }
        checks.push(check);
    }
    Ok(DetectionReport {
        flagged,
        checks,
        elapsed: start.elapsed(),
    })
}

fn relative_deviation(now: f32, golden: f32) -> f32 {
    let diff = (now - golden).abs();
    if !diff.is_finite() {
        return f32::INFINITY;
    }
    diff / golden.abs().max(1e-12)
}

fn make_check(i: usize, layer: &Layer, dev: f32, config: &MilrConfig) -> LayerCheck {
    // Flagged when the relative deviation exceeds the tolerance (the
    // absolute floor is folded into relative_deviation's denominator).
    let flagged = !dev.is_finite() || dev > config.rtol.max(config.atol);
    LayerCheck {
        layer: i,
        kind: layer.kind_name().to_string(),
        flagged,
        max_deviation: dev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts::Artifacts;
    use crate::plan::ProtectionPlan;
    use milr_tensor::{ConvSpec, Padding, TensorRng};

    fn setup() -> (Sequential, Artifacts, MilrConfig) {
        let mut rng = TensorRng::new(3);
        let mut m = Sequential::new(vec![8, 8, 1]);
        let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
        m.push(Layer::conv2d_random(3, 1, 4, spec, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(4)).unwrap();
        m.push(Layer::Flatten).unwrap();
        m.push(Layer::dense_random(6 * 6 * 4, 5, &mut rng).unwrap())
            .unwrap();
        let cfg = MilrConfig::default();
        let plan = ProtectionPlan::build(&m, &cfg).unwrap();
        let art = Artifacts::build(&m, &plan, &cfg).unwrap();
        (m, art, cfg)
    }

    #[test]
    fn clean_model_is_clean() {
        let (m, art, cfg) = setup();
        let report = run_detection(&m, &art, &cfg).unwrap();
        assert!(report.is_clean(), "{:?}", report.flagged);
        // One check per parameterized layer (conv, bias, dense).
        assert_eq!(report.checks.len(), 3);
        assert!(report.checks.iter().all(|c| c.max_deviation == 0.0));
    }

    #[test]
    fn corrupted_conv_is_flagged() {
        let (mut m, art, cfg) = setup();
        m.layers_mut()[0].params_mut().unwrap().data_mut()[7] += 3.0;
        let report = run_detection(&m, &art, &cfg).unwrap();
        assert_eq!(report.flagged, vec![0]);
    }

    #[test]
    fn corrupted_dense_is_flagged() {
        let (mut m, art, cfg) = setup();
        let w = m.layers_mut()[3].params_mut().unwrap().data_mut();
        w[0] = -w[0] - 5.0;
        let report = run_detection(&m, &art, &cfg).unwrap();
        assert_eq!(report.flagged, vec![3]);
    }

    #[test]
    fn corrupted_bias_is_flagged_by_sum() {
        let (mut m, art, cfg) = setup();
        m.layers_mut()[1].params_mut().unwrap().data_mut()[2] = 0.5;
        let report = run_detection(&m, &art, &cfg).unwrap();
        assert_eq!(report.flagged, vec![1]);
    }

    #[test]
    fn multiple_layers_flagged_independently() {
        let (mut m, art, cfg) = setup();
        m.layers_mut()[0].params_mut().unwrap().data_mut()[0] = 9.0;
        m.layers_mut()[3].params_mut().unwrap().data_mut()[10] = -9.0;
        let report = run_detection(&m, &art, &cfg).unwrap();
        assert_eq!(report.flagged, vec![0, 3]);
    }

    #[test]
    fn nan_corruption_is_flagged() {
        let (mut m, art, cfg) = setup();
        m.layers_mut()[3].params_mut().unwrap().data_mut()[4] = f32::NAN;
        let report = run_detection(&m, &art, &cfg).unwrap();
        assert!(report.flagged.contains(&3));
    }

    #[test]
    fn tiny_lsb_error_may_escape_detection() {
        // The paper's lightweight-detection caveat: flipping the lowest
        // mantissa bit of one weight moves the probe by ~1e-7 relative,
        // below the tolerance.
        let (mut m, art, cfg) = setup();
        let w = m.layers_mut()[3].params_mut().unwrap().data_mut();
        w[0] = f32::from_bits(w[0].to_bits() ^ 1);
        let report = run_detection(&m, &art, &cfg).unwrap();
        assert!(report.is_clean());
    }

    #[test]
    fn subset_detection_matches_full_pass_chunkwise() {
        let (mut m, art, cfg) = setup();
        m.layers_mut()[0].params_mut().unwrap().data_mut()[7] += 3.0;
        m.layers_mut()[3].params_mut().unwrap().data_mut()[0] = 42.0;
        let full = run_detection(&m, &art, &cfg).unwrap();
        // Sweep the checkable layers in chunks of one; the union of
        // flags must equal the full pass, with bit-identical checks.
        let mut flagged = Vec::new();
        let mut checks = Vec::new();
        for &i in &[0usize, 1, 3] {
            let part = run_detection_subset(&m, &art, &cfg, &[i]).unwrap();
            flagged.extend(part.flagged);
            checks.extend(part.checks);
        }
        assert_eq!(flagged, full.flagged);
        for (a, b) in checks.iter().zip(full.checks.iter()) {
            assert_eq!(a.layer, b.layer);
            assert_eq!(a.flagged, b.flagged);
            assert_eq!(a.max_deviation.to_bits(), b.max_deviation.to_bits());
        }
    }

    #[test]
    fn subset_detection_dedups_and_validates_indices() {
        let (m, art, cfg) = setup();
        let rep = run_detection_subset(&m, &art, &cfg, &[3, 0, 3, 0]).unwrap();
        assert_eq!(rep.checks.len(), 2);
        assert!(run_detection_subset(&m, &art, &cfg, &[99]).is_err());
        // Parameterless layers carry no check.
        assert!(run_detection_subset(&m, &art, &cfg, &[2]).is_err());
    }

    #[test]
    fn detection_reports_duration() {
        let (m, art, cfg) = setup();
        let report = run_detection(&m, &art, &cfg).unwrap();
        assert!(report.elapsed.as_nanos() > 0);
    }
}
