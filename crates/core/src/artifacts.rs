//! Initialization-phase artifacts — everything MILR keeps in
//! error-resistant storage (paper §III: SSD/HDD/persistent memory).

use crate::plan::{InversionPlan, ProtectionPlan, SolvingPlan};
use crate::semantics::milr_forward;
use crate::{MilrConfig, MilrError, Result};
use milr_ecc::{Crc2d, Crc2dCodes};
use milr_nn::{Layer, Sequential};
use milr_tensor::{conv2d, Tensor, TensorRng};
use std::collections::BTreeMap;

/// All stored recovery/detection data for one protected network.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Artifacts {
    /// Full checkpoints: position → tensor flowing into that position
    /// (always includes the network-output position).
    pub full_checkpoints: BTreeMap<usize, Tensor>,
    /// Partial checkpoints: layer → one stored output element per
    /// parameter-reuse group (per filter for conv, per column for
    /// dense), from the layer's private PRNG detection input.
    pub partial_checkpoints: BTreeMap<usize, Vec<f32>>,
    /// Bias layers: stored parameter sums (§IV-E-c).
    pub bias_sums: BTreeMap<usize, f64>,
    /// Partial-recovery conv layers: `F²` CRC grids over the `(Z, Y)`
    /// slices of the filter tensor (§IV-B-c).
    pub crc_grids: BTreeMap<usize, Vec<Crc2dCodes>>,
    /// Dense layers: golden outputs of the PRNG dummy input rows used to
    /// complete the solving system, shape `(dummy_rows, P)`.
    pub dense_dummy_outputs: BTreeMap<usize, Tensor>,
    /// Dense layers with `DummyData` inversion: golden-flow outputs
    /// through the PRNG dummy columns, shape `(B, extra)`.
    pub dense_dummy_col_outputs: BTreeMap<usize, Tensor>,
    /// Conv layers with `DummyData` inversion: golden-flow outputs of
    /// the PRNG dummy filters, shape `(B, G, G, extra)`.
    pub conv_dummy_outputs: BTreeMap<usize, Tensor>,
}

/// Regenerates the golden-flow network input from its seed.
pub(crate) fn golden_input(model: &Sequential, config: &MilrConfig) -> Tensor {
    let mut dims = vec![config.flow_batch.max(1)];
    dims.extend_from_slice(model.input_shape());
    TensorRng::new(config.flow_seed()).uniform_tensor(&dims)
}

/// Regenerates layer `i`'s private detection input from its seed.
pub(crate) fn detection_input(model: &Sequential, config: &MilrConfig, layer: usize) -> Tensor {
    let mut dims = vec![1usize];
    dims.extend_from_slice(model.shape_at(layer));
    TensorRng::new(config.detect_seed(layer)).uniform_tensor(&dims)
}

/// Regenerates the PRNG dummy input rows for a dense layer's solving
/// system, shape `(dummy_rows, N)`.
pub(crate) fn dense_dummy_rows(
    config: &MilrConfig,
    layer: usize,
    dummy_rows: usize,
    n: usize,
) -> Tensor {
    TensorRng::new(config.dummy_seed(2 * layer)).uniform_tensor(&[dummy_rows, n])
}

/// Regenerates the PRNG dummy parameters used for inversion: dense
/// columns `(N, extra)` or conv filters `(F, F, Z, extra)`.
pub(crate) fn inversion_dummy_params(config: &MilrConfig, layer: usize, dims: &[usize]) -> Tensor {
    TensorRng::new(config.dummy_seed(2 * layer + 1)).uniform_tensor(dims)
}

/// The stored element position of a convolution partial checkpoint: the
/// center output location, whose receptive field avoids the zero-padded
/// border so every filter weight influences the stored value.
pub(crate) fn conv_probe_location(gh: usize, gw: usize) -> (usize, usize) {
    (gh / 2, gw / 2)
}

impl Artifacts {
    /// Runs the initialization phase: one golden flow plus one private
    /// detection pass per layer, computing every stored artifact.
    pub fn build(model: &Sequential, plan: &ProtectionPlan, config: &MilrConfig) -> Result<Self> {
        let mut artifacts = Artifacts {
            full_checkpoints: BTreeMap::new(),
            partial_checkpoints: BTreeMap::new(),
            bias_sums: BTreeMap::new(),
            crc_grids: BTreeMap::new(),
            dense_dummy_outputs: BTreeMap::new(),
            dense_dummy_col_outputs: BTreeMap::new(),
            conv_dummy_outputs: BTreeMap::new(),
        };
        let mut x = golden_input(model, config);
        for (i, layer) in model.layers().iter().enumerate() {
            if plan.checkpoints.contains(&i) {
                artifacts.full_checkpoints.insert(i, x.clone());
            }
            let layer_plan = &plan.layers[i];
            match layer {
                Layer::Dense { weights } => {
                    let n = weights.shape().dim(0);
                    if let Some(SolvingPlan::DenseFull { dummy_rows }) = layer_plan.solving {
                        if dummy_rows > 0 {
                            let dummy = dense_dummy_rows(config, i, dummy_rows, n);
                            let out = dummy.matmul(weights)?;
                            artifacts.dense_dummy_outputs.insert(i, out);
                        }
                    }
                    if let InversionPlan::DummyData { extra } = layer_plan.inversion {
                        let cols = inversion_dummy_params(config, i, &[n, extra]);
                        let out = x.matmul(&cols)?;
                        artifacts.dense_dummy_col_outputs.insert(i, out);
                    }
                    // Partial checkpoint: the detection output row.
                    let det = detection_input(model, config, i);
                    let out = milr_forward(layer, &det)?;
                    artifacts.partial_checkpoints.insert(i, out.row(0)?);
                }
                Layer::Conv2D { filters, spec } => {
                    // CRC grids are stored for every convolution layer:
                    // they localize erroneous weights (the partial
                    // recoverability path, §IV-B-c) and also verify
                    // recovered weights bit-exactly. Even layers whose
                    // geometry admits full solving (`G² ≥ F²Z`) need the
                    // localization when their golden input is produced
                    // by an upstream convolution and therefore spans a
                    // low-rank patch subspace.
                    {
                        let f = filters.shape().dim(0);
                        let z = filters.shape().dim(2);
                        let y = filters.shape().dim(3);
                        let grid_cfg = Crc2d::with_group(z, y, config.crc_group);
                        let mut grids = Vec::with_capacity(f * f);
                        for f1 in 0..f {
                            for f2 in 0..f {
                                let slice = filter_zy_slice(filters, f1, f2);
                                grids.push(grid_cfg.encode(&slice));
                            }
                        }
                        artifacts.crc_grids.insert(i, grids);
                    }
                    if let InversionPlan::DummyData { extra } = layer_plan.inversion {
                        let f = filters.shape().dim(0);
                        let z = filters.shape().dim(2);
                        let dummies = inversion_dummy_params(config, i, &[f, f, z, extra]);
                        let out = conv2d(&x, &dummies, spec)?;
                        artifacts.conv_dummy_outputs.insert(i, out);
                    }
                    // Partial checkpoint: center output per filter.
                    let det = detection_input(model, config, i);
                    let out = milr_forward(layer, &det)?;
                    let (gh, gw) = (out.shape().dim(1), out.shape().dim(2));
                    let (ci, cj) = conv_probe_location(gh, gw);
                    let y = out.shape().dim(3);
                    let values: Vec<f32> = (0..y)
                        .map(|k| out.at(&[0, ci, cj, k]).expect("in range"))
                        .collect();
                    artifacts.partial_checkpoints.insert(i, values);
                }
                Layer::Bias { bias } => {
                    artifacts.bias_sums.insert(i, bias.sum());
                }
                _ => {}
            }
            x = milr_forward(layer, &x)?;
        }
        // Network output checkpoint (position = len).
        if plan.checkpoints.contains(&model.len()) {
            artifacts.full_checkpoints.insert(model.len(), x);
        } else {
            return Err(MilrError::CorruptArtifacts(
                "plan is missing the network-output checkpoint".into(),
            ));
        }
        Ok(artifacts)
    }
}

/// Extracts the `(Z, Y)` slice of a `(F, F, Z, Y)` filter tensor at
/// kernel offset `(f1, f2)`, row-major over `(z, y)`.
pub(crate) fn filter_zy_slice(filters: &Tensor, f1: usize, f2: usize) -> Vec<f32> {
    let z = filters.shape().dim(2);
    let y = filters.shape().dim(3);
    let base = (f1 * filters.shape().dim(1) + f2) * z * y;
    filters.data()[base..base + z * y].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_nn::Activation;
    use milr_tensor::{ConvSpec, Padding, PoolSpec};

    fn model() -> Sequential {
        let mut rng = TensorRng::new(7);
        let mut m = Sequential::new(vec![10, 10, 1]);
        let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
        m.push(Layer::conv2d_random(3, 1, 6, spec, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(6)).unwrap();
        m.push(Layer::Activation(Activation::Relu)).unwrap();
        m.push(Layer::MaxPool2D(PoolSpec::new(2, 2).unwrap()))
            .unwrap();
        m.push(Layer::conv2d_random(3, 6, 4, spec, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::Flatten).unwrap();
        m.push(Layer::dense_random(2 * 2 * 4, 5, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(5)).unwrap();
        m
    }

    fn build_all() -> (Sequential, ProtectionPlan, MilrConfig, Artifacts) {
        let m = model();
        let cfg = MilrConfig::default();
        let plan = ProtectionPlan::build(&m, &cfg).unwrap();
        let art = Artifacts::build(&m, &plan, &cfg).unwrap();
        (m, plan, cfg, art)
    }

    #[test]
    fn checkpoints_match_plan_positions() {
        let (m, plan, _, art) = build_all();
        for &c in &plan.checkpoints {
            assert!(art.full_checkpoints.contains_key(&c), "missing ckpt {c}");
        }
        assert!(art.full_checkpoints.contains_key(&m.len()));
        // No unplanned checkpoints.
        assert_eq!(art.full_checkpoints.len(), plan.checkpoints.len());
    }

    #[test]
    fn checkpoint_tensors_are_the_golden_flow() {
        let (m, plan, cfg, art) = build_all();
        // Recompute the golden flow manually and compare at a stored
        // position.
        let mut x = golden_input(&m, &cfg);
        for (i, layer) in m.layers().iter().enumerate() {
            if let Some(stored) = art.full_checkpoints.get(&i) {
                assert_eq!(stored, &x, "checkpoint {i} diverges");
            }
            x = milr_forward(layer, &x).unwrap();
        }
        assert_eq!(art.full_checkpoints.get(&m.len()).unwrap(), &x);
        let _ = plan;
    }

    #[test]
    fn partial_checkpoints_cover_param_layers() {
        let (m, _, _, art) = build_all();
        // Conv layers 0 and 4: one value per filter.
        assert_eq!(art.partial_checkpoints[&0].len(), 6);
        assert_eq!(art.partial_checkpoints[&4].len(), 4);
        // Dense layer 6: one value per column.
        assert_eq!(art.partial_checkpoints[&6].len(), 5);
        // Bias layers use sums instead.
        assert!(art.bias_sums.contains_key(&1));
        assert!(art.bias_sums.contains_key(&7));
        assert!(!art.partial_checkpoints.contains_key(&1));
        let _ = m;
    }

    #[test]
    fn dense_dummy_outputs_match_weights() {
        let (m, plan, cfg, art) = build_all();
        let Some(SolvingPlan::DenseFull { dummy_rows }) = plan.layers[6].solving else {
            panic!("dense plan missing")
        };
        assert_eq!(dummy_rows, 16 - 1);
        let dummy = dense_dummy_rows(&cfg, 6, dummy_rows, 16);
        let Layer::Dense { weights } = &m.layers()[6] else {
            panic!()
        };
        let expect = dummy.matmul(weights).unwrap();
        assert_eq!(art.dense_dummy_outputs[&6], expect);
    }

    #[test]
    fn every_conv_layer_gets_crc_grids() {
        let (_, plan, _, art) = build_all();
        // Conv 4: G²=4 < F²Z=54 -> partial recoverability plan.
        assert_eq!(plan.layers[4].solving, Some(SolvingPlan::ConvPartial));
        assert_eq!(art.crc_grids[&4].len(), 9);
        // Conv 0 is geometrically fully solvable but still carries
        // grids: they localize errors and verify recovered banks.
        assert_eq!(plan.layers[0].solving, Some(SolvingPlan::ConvFull));
        assert_eq!(art.crc_grids[&0].len(), 9);
    }

    #[test]
    fn filter_slice_layout() {
        let filters = Tensor::from_fn(&[2, 2, 3, 4], |idx| {
            (idx[0] * 1000 + idx[1] * 100 + idx[2] * 10 + idx[3]) as f32
        });
        let slice = filter_zy_slice(&filters, 1, 0);
        assert_eq!(slice.len(), 12);
        assert_eq!(slice[0], 1000.0); // (1,0,0,0)
        assert_eq!(slice[11], 1023.0); // (1,0,2,3)
    }

    #[test]
    fn regenerated_inputs_are_stable() {
        let (m, _, cfg, _) = build_all();
        assert_eq!(golden_input(&m, &cfg), golden_input(&m, &cfg));
        assert_eq!(detection_input(&m, &cfg, 3), detection_input(&m, &cfg, 3));
        assert_ne!(
            detection_input(&m, &cfg, 0).data(),
            detection_input(&m, &cfg, 4).data()
        );
    }
}
