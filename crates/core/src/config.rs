/// Configuration of a MILR protection instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MilrConfig {
    /// Master seed. All stored PRNG streams (golden-flow input, per-layer
    /// detection inputs, dummy parameters) derive from it, so the entire
    /// artifact set is reproducible from this one value plus the stored
    /// tensors.
    pub seed: u64,
    /// Relative tolerance of detection comparisons. Detection replays a
    /// forward pass in floating point; this absorbs associativity noise
    /// (paper §V-A *Limitations*). Smaller values catch lower-impact
    /// errors at the price of false positives.
    pub rtol: f32,
    /// Absolute tolerance floor of detection comparisons.
    pub atol: f32,
    /// Rows/images in the golden recovery flow. One image already yields
    /// `G²` equations per convolution filter; dense layers make up any
    /// shortfall with PRNG dummy rows, so the paper-faithful default
    /// is 1.
    pub flow_batch: usize,
    /// Parameters per 2-D CRC group (the paper uses 4).
    pub crc_group: usize,
    /// Extension beyond the paper: store `N` dense dummy rows instead of
    /// `N − B`, making every dense layer recoverable from its dummy
    /// system alone — decoupled from (possibly corrupted) neighbours in
    /// the same checkpoint segment. Costs `B` extra stored rows per
    /// dense layer (`B = 1` by default) and removes the multi-error
    /// coupling for dense layers. Default `false` (paper-faithful).
    pub dense_self_recovery: bool,
    /// Run detection checks and per-segment recovery in parallel across
    /// layers. Per-layer checks are independent by construction (each
    /// layer replays its own seeded input), and checkpoint segments are
    /// independent given their anchors, so the parallel paths return
    /// **bit-identical** results to the serial ones — `false` only
    /// forces the serial reference path (used by the determinism tests
    /// and single-core profiling).
    pub parallel: bool,
}

impl Default for MilrConfig {
    fn default() -> Self {
        MilrConfig {
            seed: 0x4D49_4C52, // "MILR"
            rtol: 1e-3,
            atol: 1e-4,
            flow_batch: 1,
            crc_group: 4,
            dense_self_recovery: false,
            parallel: true,
        }
    }
}

impl MilrConfig {
    /// Derives the golden-flow input seed.
    pub(crate) fn flow_seed(&self) -> u64 {
        self.seed ^ 0xF10F_F10F_F10F_F10F
    }

    /// Derives the per-layer detection input seed.
    pub(crate) fn detect_seed(&self, layer: usize) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(layer as u64)
    }

    /// Derives the per-layer dummy-data seed.
    pub(crate) fn dummy_seed(&self, layer: usize) -> u64 {
        self.seed
            .wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            .wrapping_add(layer as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_faithful() {
        let c = MilrConfig::default();
        assert_eq!(c.flow_batch, 1);
        assert_eq!(c.crc_group, 4);
        assert!(c.rtol > 0.0 && c.atol > 0.0);
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let c = MilrConfig::default();
        assert_ne!(c.flow_seed(), c.seed);
        assert_ne!(c.detect_seed(0), c.detect_seed(1));
        assert_ne!(c.dummy_seed(3), c.detect_seed(3));
    }
}
