use milr_ecc::ring::{f16_snap, int8_snap};

/// The representable-value grid MILR's solvers target.
///
/// Weights living in a quantized substrate occupy a discrete grid whose
/// points are exactly representable in f32 (the int8 scale is a power
/// of two; every binary16 value is an f32 value). Telling the recovery
/// solvers about the grid turns the ±4096-ulp CRC snap search into an
/// **exact integer-ring solve**: the f64 least-squares solution is
/// snapped to the nearest grid point, which *is* the golden bit pattern
/// whenever the layer's stored weights came off that grid — the ulp
/// walk never runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightGrid {
    /// Full-precision f32 weights (the paper's model). Recovery snaps
    /// solver output with the ±4096-ulp CRC bit walk.
    #[default]
    F32,
    /// Weights on the int8 lattice `q · 2⁻⁶` (see `milr_ecc::ring`).
    Int8,
    /// Weights on the IEEE binary16 grid.
    Fp16,
}

impl WeightGrid {
    /// Snaps a value to its nearest grid point (identity for [`F32`]).
    ///
    /// [`F32`]: WeightGrid::F32
    pub fn snap(&self, v: f32) -> f32 {
        match self {
            WeightGrid::F32 => v,
            WeightGrid::Int8 => int8_snap(v),
            WeightGrid::Fp16 => f16_snap(v),
        }
    }

    /// True when grid points are exactly f32-representable and recovery
    /// can bypass the ulp search.
    pub fn is_exact(&self) -> bool {
        !matches!(self, WeightGrid::F32)
    }

    /// CRC-snap search radius in grid steps: ulps for f32, lattice /
    /// bit-pattern steps for the quantized grids (whose snap already
    /// lands on the golden point; the tiny radius only absorbs a
    /// round-to-nearest tie at a grid midpoint).
    pub(crate) fn snap_radius(&self) -> u32 {
        match self {
            WeightGrid::F32 => 4096,
            WeightGrid::Int8 => 8,
            WeightGrid::Fp16 => 16,
        }
    }

    /// The `delta`-th grid step from `base` (descending when `neg`), or
    /// `None` when the step leaves the grid's range.
    pub(crate) fn candidate(&self, base: f32, delta: u32, neg: bool) -> Option<f32> {
        match self {
            WeightGrid::F32 => {
                let bits = base.to_bits();
                Some(f32::from_bits(if neg {
                    bits.wrapping_sub(delta)
                } else {
                    bits.wrapping_add(delta)
                }))
            }
            WeightGrid::Int8 => {
                let q = i32::from(milr_ecc::ring::int8_quantize(base));
                let q = if neg {
                    q - delta as i32
                } else {
                    q + delta as i32
                };
                (-128..=127)
                    .contains(&q)
                    .then(|| milr_ecc::ring::int8_value(q as i8))
            }
            WeightGrid::Fp16 => {
                let bits = i32::from(milr_ecc::ring::f32_to_f16_bits(base));
                let bits = if neg {
                    bits - delta as i32
                } else {
                    bits + delta as i32
                };
                (0..=0xFFFF)
                    .contains(&bits)
                    .then(|| milr_ecc::ring::f16_bits_to_f32(bits as u16))
            }
        }
    }
}

/// Configuration of a MILR protection instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MilrConfig {
    /// Master seed. All stored PRNG streams (golden-flow input, per-layer
    /// detection inputs, dummy parameters) derive from it, so the entire
    /// artifact set is reproducible from this one value plus the stored
    /// tensors.
    pub seed: u64,
    /// Relative tolerance of detection comparisons. Detection replays a
    /// forward pass in floating point; this absorbs associativity noise
    /// (paper §V-A *Limitations*). Smaller values catch lower-impact
    /// errors at the price of false positives.
    pub rtol: f32,
    /// Absolute tolerance floor of detection comparisons.
    pub atol: f32,
    /// Rows/images in the golden recovery flow. One image already yields
    /// `G²` equations per convolution filter; dense layers make up any
    /// shortfall with PRNG dummy rows, so the paper-faithful default
    /// is 1.
    pub flow_batch: usize,
    /// Parameters per 2-D CRC group (the paper uses 4).
    pub crc_group: usize,
    /// Extension beyond the paper: store `N` dense dummy rows instead of
    /// `N − B`, making every dense layer recoverable from its dummy
    /// system alone — decoupled from (possibly corrupted) neighbours in
    /// the same checkpoint segment. Costs `B` extra stored rows per
    /// dense layer (`B = 1` by default) and removes the multi-error
    /// coupling for dense layers. Default `false` (paper-faithful).
    pub dense_self_recovery: bool,
    /// Run detection checks and per-segment recovery in parallel across
    /// layers. Per-layer checks are independent by construction (each
    /// layer replays its own seeded input), and checkpoint segments are
    /// independent given their anchors, so the parallel paths return
    /// **bit-identical** results to the serial ones — `false` only
    /// forces the serial reference path (used by the determinism tests
    /// and single-core profiling).
    pub parallel: bool,
    /// The representable-value grid the protected weights live on. Set
    /// to [`WeightGrid::Int8`] / [`WeightGrid::Fp16`] when the model is
    /// stored in a quantized substrate: recovery then snaps solver
    /// output onto the grid exactly instead of walking the f32 ulp
    /// neighbourhood. Default [`WeightGrid::F32`] (paper-faithful).
    pub weight_grid: WeightGrid,
}

impl Default for MilrConfig {
    fn default() -> Self {
        MilrConfig {
            seed: 0x4D49_4C52, // "MILR"
            rtol: 1e-3,
            atol: 1e-4,
            flow_batch: 1,
            crc_group: 4,
            dense_self_recovery: false,
            parallel: true,
            weight_grid: WeightGrid::F32,
        }
    }
}

impl MilrConfig {
    /// Derives the golden-flow input seed.
    pub(crate) fn flow_seed(&self) -> u64 {
        self.seed ^ 0xF10F_F10F_F10F_F10F
    }

    /// Derives the per-layer detection input seed.
    pub(crate) fn detect_seed(&self, layer: usize) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(layer as u64)
    }

    /// Derives the per-layer dummy-data seed.
    pub(crate) fn dummy_seed(&self, layer: usize) -> u64 {
        self.seed
            .wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            .wrapping_add(layer as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_faithful() {
        let c = MilrConfig::default();
        assert_eq!(c.flow_batch, 1);
        assert_eq!(c.crc_group, 4);
        assert!(c.rtol > 0.0 && c.atol > 0.0);
    }

    #[test]
    fn f32_grid_is_identity_and_inexact() {
        let g = WeightGrid::F32;
        for v in [0.1f32, -3.7, 1e-20, f32::MAX] {
            assert_eq!(g.snap(v).to_bits(), v.to_bits());
        }
        assert!(!g.is_exact());
        assert_eq!(
            g.candidate(1.0, 1, false),
            Some(f32::from_bits(1.0f32.to_bits() + 1))
        );
    }

    #[test]
    fn quantized_grids_walk_their_lattices() {
        let g = WeightGrid::Int8;
        assert!(g.is_exact());
        assert_eq!(g.candidate(0.0, 1, false), Some(0.015625));
        assert_eq!(g.candidate(0.0, 1, true), Some(-0.015625));
        assert_eq!(g.candidate(2.0, 1, false), None, "clamps at q = 127");
        let h = WeightGrid::Fp16;
        assert!(h.is_exact());
        assert_eq!(h.candidate(0.0, 0, false), Some(0.0));
        // One f16 step from 1.0 is 1.0 + 2^-10.
        assert_eq!(h.candidate(1.0, 1, false), Some(1.0 + 2.0f32.powi(-10)));
        assert_eq!(h.candidate(0.0, 1, true), None, "below bit pattern 0");
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let c = MilrConfig::default();
        assert_ne!(c.flow_seed(), c.seed);
        assert_ne!(c.detect_seed(0), c.detect_seed(1));
        assert_ne!(c.dummy_seed(3), c.detect_seed(3));
    }
}
