use crate::{MilrConfig, MilrError, Result};
use milr_nn::{Layer, Sequential};
use serde::{Deserialize, Serialize};

/// How a layer's parameters will be solved during recovery (the paper's
/// function `R(x, y) = p`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolvingPlan {
    /// Dense layer: factor the (dummy-padded) input, one solve per output
    /// column. `dummy_rows` PRNG rows are appended so the system has at
    /// least N equations (§IV-A-b); their outputs are stored at init.
    DenseFull {
        /// PRNG input rows appended to reach `M ≥ N`.
        dummy_rows: usize,
    },
    /// Convolution with `B·G² ≥ F²Z`: the full filter bank is exactly
    /// recoverable from the im2col system (§IV-B-b).
    ConvFull,
    /// Convolution with `B·G² < F²Z`: *partial recoverability* — 2-D CRC
    /// pinpoints erroneous weights, shrinking the unknown set to at most
    /// `G²` per filter; whole-layer corruption falls back to
    /// minimum-norm least squares (§IV-B-b, §V-B).
    ConvPartial,
    /// Bias layer: parameters are `y − x`, deduplicated (§IV-E-b).
    Bias,
}

/// How backward passes (`f⁻¹`) will cross this layer when recovering
/// layers that precede it in the same checkpoint segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InversionPlan {
    /// Invertible as-is (dense `P ≥ N`, conv `Y ≥ F²Z`, bias, flatten,
    /// padding, activations under MILR semantics).
    Native,
    /// Made invertible by `extra` PRNG dummy parameters (dense columns
    /// or conv filters); only their outputs are stored (§III,
    /// opportunity 3).
    DummyData {
        /// Dummy columns/filters appended for inversion.
        extra: usize,
    },
    /// No parameterized layer precedes it in its segment, so no backward
    /// pass ever crosses it (§III, opportunity 2).
    NotNeeded,
    /// Not invertible (pooling, or dummy data costlier than a
    /// checkpoint): a full input checkpoint is stored at this layer's
    /// position instead, ending the segment (§III, opportunity 1 in
    /// reverse).
    Checkpointed,
}

/// Planning record for one layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerPlan {
    /// Layer index in the model.
    pub index: usize,
    /// Layer kind name.
    pub kind: String,
    /// Trainable parameter count.
    pub param_count: usize,
    /// Solving strategy (`None` for parameterless layers).
    pub solving: Option<SolvingPlan>,
    /// Inversion strategy.
    pub inversion: InversionPlan,
}

/// The initialization-phase output: checkpoint positions and per-layer
/// strategies.
///
/// Position `p` denotes the tensor flowing *into* layer `p` (equals the
/// output of layer `p − 1`); position `len` is the network output.
/// Position 0 is never stored — the golden input is regenerated from its
/// seed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtectionPlan {
    /// Per-layer plans, indexed by layer.
    pub layers: Vec<LayerPlan>,
    /// Stored full-checkpoint positions, ascending; always ends with the
    /// network-output position `layers.len()`.
    pub checkpoints: Vec<usize>,
}

impl ProtectionPlan {
    /// Builds the plan for a model (the paper's initialization-phase
    /// placement logic).
    ///
    /// # Errors
    ///
    /// Returns [`MilrError::ModelMismatch`] for an empty model.
    pub fn build(model: &Sequential, config: &MilrConfig) -> Result<Self> {
        if model.is_empty() {
            return Err(MilrError::ModelMismatch("model has no layers".into()));
        }
        let b = config.flow_batch.max(1);
        let mut layers = Vec::with_capacity(model.len());
        let mut checkpoints = Vec::new();
        // True when a parameterized layer exists in the current segment
        // before the layer being examined — only then do backward passes
        // ever cross it.
        let mut has_param_before = false;
        for (i, layer) in model.layers().iter().enumerate() {
            let input = model.shape_at(i);
            let (solving, inversion) = match layer {
                Layer::Dense { weights } => {
                    let n = weights.shape().dim(0);
                    let p = weights.shape().dim(1);
                    // Paper: pad to M ≥ N with N − B dummy rows. The
                    // self-recovery extension stores N rows so the dense
                    // system is solvable without any propagated values.
                    let dummy_rows = if config.dense_self_recovery {
                        n
                    } else {
                        n.saturating_sub(b)
                    };
                    let solving = SolvingPlan::DenseFull { dummy_rows };
                    let inversion = if !has_param_before {
                        InversionPlan::NotNeeded
                    } else if p >= n {
                        InversionPlan::Native
                    } else {
                        // Dummy outputs cost B·(N−P) floats; an input
                        // checkpoint costs B·N floats — dummy data always
                        // wins for dense, but keep the comparison
                        // explicit in case of degenerate shapes.
                        let extra = n - p;
                        let dummy_cost = b * extra;
                        let ckpt_cost = b * n;
                        if dummy_cost <= ckpt_cost {
                            InversionPlan::DummyData { extra }
                        } else {
                            InversionPlan::Checkpointed
                        }
                    };
                    (Some(solving), inversion)
                }
                Layer::Conv2D { filters, spec } => {
                    let f = filters.shape().dim(0);
                    let z = filters.shape().dim(2);
                    let y = filters.shape().dim(3);
                    let unknowns = f * f * z;
                    let (gh, _) = spec.output_dim(input[0])?;
                    let (gw, _) = spec.output_dim(input[1])?;
                    let equations = b * gh * gw;
                    let solving = if equations >= unknowns {
                        SolvingPlan::ConvFull
                    } else {
                        SolvingPlan::ConvPartial
                    };
                    let inversion = if !has_param_before {
                        InversionPlan::NotNeeded
                    } else if y >= unknowns {
                        InversionPlan::Native
                    } else {
                        let extra = unknowns - y;
                        // Dummy filters store (B, G, G, extra) outputs;
                        // the checkpoint alternative stores the layer
                        // input (B, M, M, Z). Choose the cheaper (§III).
                        let dummy_cost = b * gh * gw * extra;
                        let ckpt_cost = b * input.iter().product::<usize>();
                        if dummy_cost <= ckpt_cost {
                            InversionPlan::DummyData { extra }
                        } else {
                            InversionPlan::Checkpointed
                        }
                    };
                    (Some(solving), inversion)
                }
                Layer::Bias { .. } => (Some(SolvingPlan::Bias), InversionPlan::Native),
                Layer::MaxPool2D(_) | Layer::AvgPool2D(_) => {
                    // Pooling destroys information (§IV-C). If backward
                    // passes would need to cross it, anchor them with a
                    // checkpoint of its input instead.
                    let inv = if has_param_before {
                        InversionPlan::Checkpointed
                    } else {
                        InversionPlan::NotNeeded
                    };
                    (None, inv)
                }
                Layer::Activation(_)
                | Layer::Dropout { .. }
                | Layer::Flatten
                | Layer::ZeroPad2D { .. } => (None, InversionPlan::Native),
            };
            if inversion == InversionPlan::Checkpointed {
                checkpoints.push(i);
                has_param_before = false;
            }
            if layer.param_count() > 0 {
                has_param_before = true;
            }
            layers.push(LayerPlan {
                index: i,
                kind: layer.kind_name().to_string(),
                param_count: layer.param_count(),
                solving,
                inversion,
            });
        }
        // The golden network output is always checkpointed.
        checkpoints.push(model.len());
        Ok(ProtectionPlan {
            layers,
            checkpoints,
        })
    }

    /// The checkpoint segments `(start, end)` (positions, half-open over
    /// layers `start..end`), covering the whole network.
    pub fn segments(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.checkpoints.len());
        let mut start = 0usize;
        for &c in &self.checkpoints {
            if c > start {
                out.push((start, c));
            }
            start = c;
        }
        out
    }

    /// The segment containing layer `index`.
    pub fn segment_of(&self, index: usize) -> (usize, usize) {
        for (s, e) in self.segments() {
            if index >= s && index < e {
                return (s, e);
            }
        }
        // Only reachable for out-of-range indices; the final segment
        // always ends at len().
        (0, self.layers.len())
    }

    /// Maximum number of simultaneously erroneous layers MILR can fully
    /// recover: one per segment ("the system can only recover at most one
    /// layer in between two checkpoints", §III).
    pub fn recoverable_layer_budget(&self) -> usize {
        self.segments().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_nn::Activation;
    use milr_tensor::{ConvSpec, Padding, PoolSpec, TensorRng};

    fn conv_model() -> Sequential {
        // conv(8ch) -> bias -> relu -> pool -> conv(4ch wide) -> bias
        //   -> flatten -> dense -> bias
        let mut rng = TensorRng::new(1);
        let mut m = Sequential::new(vec![12, 12, 1]);
        let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
        m.push(Layer::conv2d_random(3, 1, 8, spec, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(8)).unwrap();
        m.push(Layer::Activation(Activation::Relu)).unwrap();
        m.push(Layer::MaxPool2D(PoolSpec::new(2, 2).unwrap()))
            .unwrap();
        m.push(Layer::conv2d_random(3, 8, 4, spec, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(4)).unwrap();
        m.push(Layer::Flatten).unwrap();
        m.push(Layer::dense_random(3 * 3 * 4, 6, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(6)).unwrap();
        m
    }

    #[test]
    fn rejects_empty_model() {
        let m = Sequential::new(vec![4]);
        assert!(ProtectionPlan::build(&m, &MilrConfig::default()).is_err());
    }

    #[test]
    fn pool_after_params_forces_checkpoint() {
        let m = conv_model();
        let plan = ProtectionPlan::build(&m, &MilrConfig::default()).unwrap();
        // Pool is layer 3 and conv/bias precede it.
        assert_eq!(plan.layers[3].inversion, InversionPlan::Checkpointed);
        assert!(plan.checkpoints.contains(&3));
        // Final output always checkpointed.
        assert!(plan.checkpoints.contains(&m.len()));
    }

    #[test]
    fn first_layer_inversion_not_needed() {
        let m = conv_model();
        let plan = ProtectionPlan::build(&m, &MilrConfig::default()).unwrap();
        // Layer 0 has nothing before it to recover.
        assert_eq!(plan.layers[0].inversion, InversionPlan::NotNeeded);
        // Conv at layer 4 follows the pool checkpoint, so it is the
        // first parameterized layer of its segment.
        assert_eq!(plan.layers[4].inversion, InversionPlan::NotNeeded);
    }

    #[test]
    fn dense_solving_pads_to_n_rows() {
        let m = conv_model();
        let plan = ProtectionPlan::build(&m, &MilrConfig::default()).unwrap();
        match plan.layers[7].solving {
            Some(SolvingPlan::DenseFull { dummy_rows }) => {
                assert_eq!(dummy_rows, 36 - 1);
            }
            other => panic!("expected DenseFull, got {other:?}"),
        }
    }

    #[test]
    fn conv_solving_strategy_follows_geometry() {
        let m = conv_model();
        let plan = ProtectionPlan::build(&m, &MilrConfig::default()).unwrap();
        // Conv 0: G² = 100 ≥ F²Z = 9 -> full.
        assert_eq!(plan.layers[0].solving, Some(SolvingPlan::ConvFull));
        // Conv 4: G² = 9 < F²Z = 72 -> partial.
        assert_eq!(plan.layers[4].solving, Some(SolvingPlan::ConvPartial));
    }

    #[test]
    fn dense_inversion_uses_dummy_columns_when_narrow() {
        // dense 8 -> 3 (P < N) following another dense: needs dummies.
        let mut rng = TensorRng::new(2);
        let mut m = Sequential::new(vec![8]);
        m.push(Layer::dense_random(8, 8, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::dense_random(8, 3, &mut rng).unwrap())
            .unwrap();
        let plan = ProtectionPlan::build(&m, &MilrConfig::default()).unwrap();
        assert_eq!(
            plan.layers[1].inversion,
            InversionPlan::DummyData { extra: 5 }
        );
        // The first dense is wide enough but is also first in segment.
        assert_eq!(plan.layers[0].inversion, InversionPlan::NotNeeded);
    }

    #[test]
    fn segments_partition_the_network() {
        let m = conv_model();
        let plan = ProtectionPlan::build(&m, &MilrConfig::default()).unwrap();
        let segs = plan.segments();
        // Continuous cover from 0 to len.
        assert_eq!(segs.first().unwrap().0, 0);
        assert_eq!(segs.last().unwrap().1, m.len());
        for w in segs.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        // segment_of agrees.
        for i in 0..m.len() {
            let (s, e) = plan.segment_of(i);
            assert!(i >= s && i < e);
        }
        assert_eq!(plan.recoverable_layer_budget(), segs.len());
    }

    #[test]
    fn flow_batch_affects_dense_dummies() {
        let mut rng = TensorRng::new(3);
        let mut m = Sequential::new(vec![8]);
        m.push(Layer::dense_random(8, 4, &mut rng).unwrap())
            .unwrap();
        let cfg = MilrConfig {
            flow_batch: 8,
            ..MilrConfig::default()
        };
        let plan = ProtectionPlan::build(&m, &cfg).unwrap();
        assert_eq!(
            plan.layers[0].solving,
            Some(SolvingPlan::DenseFull { dummy_rows: 0 })
        );
    }
}
