use milr_linalg::LinalgError;
use milr_nn::NnError;
use milr_tensor::TensorError;
use std::fmt;

/// Errors produced by MILR's initialization, detection and recovery
/// phases.
#[derive(Debug, Clone, PartialEq)]
pub enum MilrError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An underlying network operation failed.
    Network(NnError),
    /// A linear solve failed (singular or mis-shaped system).
    Solve(LinalgError),
    /// Recovery required inverting a layer the plan marked
    /// non-invertible — indicates artifacts and model fell out of sync.
    NotInvertible {
        /// Layer index.
        layer: usize,
        /// Layer kind.
        kind: String,
    },
    /// The model handed to detection/recovery is structurally different
    /// from the one that was protected.
    ModelMismatch(String),
    /// The stored artifacts are internally inconsistent (e.g. missing
    /// checkpoint for a planned position).
    CorruptArtifacts(String),
}

impl fmt::Display for MilrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MilrError::Tensor(e) => write!(f, "tensor error: {e}"),
            MilrError::Network(e) => write!(f, "network error: {e}"),
            MilrError::Solve(e) => write!(f, "solver error: {e}"),
            MilrError::NotInvertible { layer, kind } => {
                write!(f, "layer {layer} ({kind}) cannot be inverted")
            }
            MilrError::ModelMismatch(msg) => write!(f, "model mismatch: {msg}"),
            MilrError::CorruptArtifacts(msg) => write!(f, "corrupt artifacts: {msg}"),
        }
    }
}

impl std::error::Error for MilrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MilrError::Tensor(e) => Some(e),
            MilrError::Network(e) => Some(e),
            MilrError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for MilrError {
    fn from(e: TensorError) -> Self {
        MilrError::Tensor(e)
    }
}

impl From<NnError> for MilrError {
    fn from(e: NnError) -> Self {
        MilrError::Network(e)
    }
}

impl From<LinalgError> for MilrError {
    fn from(e: LinalgError) -> Self {
        MilrError::Solve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let t: MilrError = TensorError::InvalidGeometry("x".into()).into();
        assert!(t.to_string().contains("tensor error"));
        let n: MilrError = NnError::BadConfig("y".into()).into();
        assert!(n.to_string().contains("network error"));
        let s: MilrError = LinalgError::Singular { pivot: 2 }.into();
        assert!(s.to_string().contains("solver error"));
        assert!(std::error::Error::source(&s).is_some());
        let ni = MilrError::NotInvertible {
            layer: 3,
            kind: "MaxPool2D".into(),
        };
        assert!(ni.to_string().contains("cannot be inverted"));
        assert!(std::error::Error::source(&ni).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MilrError>();
    }
}
