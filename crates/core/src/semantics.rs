//! MILR's recovery-pass layer semantics.
//!
//! During initialization, detection and recovery, "all activation
//! functions are treated as linear activation functions. Allowing forward
//! and backward passes through the layer without any changes to the
//! tensor" (paper §IV-D); dropout and other pass-through layers are
//! "essentially ignored". Every MILR pass therefore flows through this
//! module instead of the inference-time [`Layer::forward`], keeping the
//! golden artifacts and the replayed passes bit-identical and the layer
//! algebra exactly invertible.

use crate::Result;
use milr_nn::{Layer, Sequential};
use milr_tensor::Tensor;

/// Forward pass of one layer under MILR semantics: activations and
/// dropout are identity, everything else is the normal layer math.
pub(crate) fn milr_forward(layer: &Layer, x: &Tensor) -> Result<Tensor> {
    match layer {
        Layer::Activation(_) | Layer::Dropout { .. } => Ok(x.clone()),
        other => Ok(other.forward(x)?),
    }
}

/// A contiguous window `[start, end)` of a model's layers plus their
/// input shapes — the complete working set of one checkpoint-segment
/// recovery.
///
/// Propagation during recovery never reads outside the segment's layer
/// range, so a parallel segment worker that clones only this window
/// (instead of the whole model) sees exactly what the serial pass
/// would; memory per worker is bounded by the segment, not the model
/// (the first deferred trade-off of DESIGN.md §4). Indices stay
/// *global*: `layer(i)` and `shape_at(i)` take the same indices the
/// plan and artifacts use.
#[derive(Debug, Clone)]
pub(crate) struct SegmentView {
    offset: usize,
    layers: Vec<Layer>,
    /// `shapes[i]` is the per-image input shape of layer `offset + i`;
    /// one extra entry holds the window's output shape.
    shapes: Vec<Vec<usize>>,
}

impl SegmentView {
    /// Clones layers `start..end` (and their shapes) out of the model.
    pub fn from_model(model: &Sequential, start: usize, end: usize) -> Self {
        SegmentView {
            offset: start,
            layers: model.layers()[start..end].to_vec(),
            shapes: (start..=end).map(|i| model.shape_at(i).to_vec()).collect(),
        }
    }

    /// The layer at *global* index `index`.
    pub fn layer(&self, index: usize) -> &Layer {
        &self.layers[index - self.offset]
    }

    /// Mutable access to the layer at *global* index `index`.
    pub fn layer_mut(&mut self, index: usize) -> &mut Layer {
        &mut self.layers[index - self.offset]
    }

    /// Per-image input shape of the layer at *global* index `index`.
    pub fn shape_at(&self, index: usize) -> &[usize] {
        &self.shapes[index - self.offset]
    }

    /// Consumes the view, moving the parameter tensors of the given
    /// (distinct) global indices out without cloning — the write-back
    /// hand-off after a segment recovery. Parameterless layers yield
    /// `None`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-window or repeated indices.
    pub fn extract_params(self, indices: &[usize]) -> Vec<(usize, Option<Tensor>)> {
        let offset = self.offset;
        let mut layers: Vec<Option<Layer>> = self.layers.into_iter().map(Some).collect();
        indices
            .iter()
            .map(|&i| {
                let layer = layers[i - offset].take().expect("indices are distinct");
                let params = match layer {
                    Layer::Dense { weights } => Some(weights),
                    Layer::Conv2D { filters, .. } => Some(filters),
                    Layer::Bias { bias } => Some(bias),
                    _ => None,
                };
                (i, params)
            })
            .collect()
    }
}

/// Runs layers `from..to` (global indices) of the window under MILR
/// semantics.
pub(crate) fn milr_forward_range(
    view: &SegmentView,
    x: &Tensor,
    from: usize,
    to: usize,
) -> Result<Tensor> {
    let mut cur = x.clone();
    for layer in &view.layers[from - view.offset..to - view.offset] {
        cur = milr_forward(layer, &cur)?;
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_nn::Activation;
    use milr_tensor::TensorRng;

    #[test]
    fn activations_and_dropout_pass_through() {
        let x = Tensor::from_vec(vec![-2.0, 3.0], &[1, 2]).unwrap();
        let relu = Layer::Activation(Activation::Relu);
        assert_eq!(milr_forward(&relu, &x).unwrap(), x);
        let drop = Layer::Dropout { rate: 0.9 };
        assert_eq!(milr_forward(&drop, &x).unwrap(), x);
        // Inference semantics would have clamped the negative.
        assert_ne!(relu.forward(&x).unwrap(), x);
    }

    #[test]
    fn parameterized_layers_keep_their_math() {
        let mut rng = TensorRng::new(1);
        let dense = Layer::dense_random(4, 3, &mut rng).unwrap();
        let x = rng.uniform_tensor(&[2, 4]);
        assert_eq!(
            milr_forward(&dense, &x).unwrap(),
            dense.forward(&x).unwrap()
        );
    }

    #[test]
    fn range_composition() {
        let mut rng = TensorRng::new(2);
        let mut m = Sequential::new(vec![4]);
        m.push(Layer::dense_random(4, 4, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::Activation(Activation::Relu)).unwrap();
        m.push(Layer::bias_zero(4)).unwrap();
        let x = rng.uniform_tensor(&[1, 4]);
        let view = SegmentView::from_model(&m, 0, m.len());
        let ab = milr_forward_range(&view, &x, 0, 2).unwrap();
        let full = milr_forward_range(&view, &ab, 2, 3).unwrap();
        assert_eq!(full, milr_forward_range(&view, &x, 0, 3).unwrap());
    }

    #[test]
    fn segment_view_window_matches_full_model() {
        let mut rng = TensorRng::new(4);
        let mut m = Sequential::new(vec![6]);
        m.push(Layer::dense_random(6, 5, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(5)).unwrap();
        m.push(Layer::dense_random(5, 3, &mut rng).unwrap())
            .unwrap();
        let window = SegmentView::from_model(&m, 1, 3);
        assert_eq!(window.shape_at(1), m.shape_at(1));
        assert_eq!(window.shape_at(3), m.shape_at(3));
        assert_eq!(window.layer(2), &m.layers()[2]);
        let x = rng.uniform_tensor(&[1, 5]);
        let full = SegmentView::from_model(&m, 0, m.len());
        assert_eq!(
            milr_forward_range(&window, &x, 1, 3).unwrap(),
            milr_forward_range(&full, &x, 1, 3).unwrap()
        );
    }
}
