//! MILR's recovery-pass layer semantics.
//!
//! During initialization, detection and recovery, "all activation
//! functions are treated as linear activation functions. Allowing forward
//! and backward passes through the layer without any changes to the
//! tensor" (paper §IV-D); dropout and other pass-through layers are
//! "essentially ignored". Every MILR pass therefore flows through this
//! module instead of the inference-time [`Layer::forward`], keeping the
//! golden artifacts and the replayed passes bit-identical and the layer
//! algebra exactly invertible.

use crate::Result;
use milr_nn::{Layer, Sequential};
use milr_tensor::Tensor;

/// Forward pass of one layer under MILR semantics: activations and
/// dropout are identity, everything else is the normal layer math.
pub(crate) fn milr_forward(layer: &Layer, x: &Tensor) -> Result<Tensor> {
    match layer {
        Layer::Activation(_) | Layer::Dropout { .. } => Ok(x.clone()),
        other => Ok(other.forward(x)?),
    }
}

/// Runs layers `from..to` of the model under MILR semantics.
pub(crate) fn milr_forward_range(
    model: &Sequential,
    x: &Tensor,
    from: usize,
    to: usize,
) -> Result<Tensor> {
    let mut cur = x.clone();
    for layer in &model.layers()[from..to] {
        cur = milr_forward(layer, &cur)?;
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_nn::Activation;
    use milr_tensor::TensorRng;

    #[test]
    fn activations_and_dropout_pass_through() {
        let x = Tensor::from_vec(vec![-2.0, 3.0], &[1, 2]).unwrap();
        let relu = Layer::Activation(Activation::Relu);
        assert_eq!(milr_forward(&relu, &x).unwrap(), x);
        let drop = Layer::Dropout { rate: 0.9 };
        assert_eq!(milr_forward(&drop, &x).unwrap(), x);
        // Inference semantics would have clamped the negative.
        assert_ne!(relu.forward(&x).unwrap(), x);
    }

    #[test]
    fn parameterized_layers_keep_their_math() {
        let mut rng = TensorRng::new(1);
        let dense = Layer::dense_random(4, 3, &mut rng).unwrap();
        let x = rng.uniform_tensor(&[2, 4]);
        assert_eq!(
            milr_forward(&dense, &x).unwrap(),
            dense.forward(&x).unwrap()
        );
    }

    #[test]
    fn range_composition() {
        let mut rng = TensorRng::new(2);
        let mut m = Sequential::new(vec![4]);
        m.push(Layer::dense_random(4, 4, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::Activation(Activation::Relu)).unwrap();
        m.push(Layer::bias_zero(4)).unwrap();
        let x = rng.uniform_tensor(&[1, 4]);
        let ab = milr_forward_range(&m, &x, 0, 2).unwrap();
        let full = milr_forward_range(&m, &ab, 2, 3).unwrap();
        assert_eq!(full, milr_forward_range(&m, &x, 0, 3).unwrap());
    }
}
