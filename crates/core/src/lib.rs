//! # milr-core
//!
//! **MILR — Mathematically Induced Layer Recovery** (Ponader, Kundu,
//! Solihin; DSN 2021): software-only error detection and self-healing for
//! CNN parameters, suitable for *plaintext-space error correction*
//! (PSEC).
//!
//! MILR exploits the algebraic relationship between each layer's input
//! `x`, parameters `p` and output `y`:
//!
//! ```text
//! f(x, p) = y        forward pass
//! f⁻¹(y, p) = x      backward pass (when the layer is invertible)
//! R(x, y) = p        parameter solving
//! ```
//!
//! Given golden input/output pairs held in error-resistant storage,
//! corrupted parameters — single bits, whole weights, or entire layers —
//! are *recomputed* rather than redundantly stored.
//!
//! The crate implements the paper's three phases:
//!
//! * **Initialization** ([`Milr::protect`]) — walks the network once,
//!   plans checkpoint placement and dummy data (choosing the cheaper of
//!   the two per layer, §III), and computes all artifacts: PRNG seeds,
//!   partial checkpoints, full checkpoints, dummy outputs, 2-D CRC codes
//!   and bias sums.
//! * **Error detection** ([`Milr::detect`]) — regenerates per-layer
//!   pseudo-random inputs from stored seeds, replays each layer, and
//!   compares against partial checkpoints (one stored output element per
//!   parameter-reuse group).
//! * **Error recovery** ([`Milr::recover`]) — propagates the nearest
//!   checkpoints to each flagged layer (forward passes from the
//!   preceding checkpoint, inverse passes from the succeeding one) and
//!   solves the layer's linear system for its parameters; convolution
//!   layers whose system would be under-determined use 2-D CRC to
//!   pinpoint the corrupted weights (*partial recoverability*, §IV-B),
//!   falling back to minimum-norm least squares for whole-layer
//!   corruption.
//!
//! The [`availability`] module implements the paper's
//! availability–accuracy trade-off model (Equation 6, Figure 12), and
//! [`StorageReport`] reproduces the storage-overhead accounting of
//! Tables V, VII and IX.
//!
//! ## Example
//!
//! ```
//! use milr_core::{Milr, MilrConfig};
//! use milr_nn::{Layer, Sequential};
//! use milr_tensor::TensorRng;
//!
//! // A small dense network.
//! let mut rng = TensorRng::new(3);
//! let mut model = Sequential::new(vec![12]);
//! model.push(Layer::dense_random(12, 8, &mut rng)?)?;
//! model.push(Layer::bias_zero(8))?;
//!
//! // Initialization phase.
//! let milr = Milr::protect(&model, MilrConfig::default())?;
//!
//! // Corrupt a weight; detection flags the layer; recovery heals it.
//! let golden = model.clone();
//! model.layers_mut()[0].params_mut().unwrap().data_mut()[5] = 99.0;
//! let report = milr.detect(&model)?;
//! assert!(!report.flagged.is_empty());
//! milr.recover(&mut model, &report)?;
//! let healed = model.layers()[0].params().unwrap();
//! assert!(healed.approx_eq(golden.layers()[0].params().unwrap(), 1e-4, 1e-5));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

mod artifacts;
pub mod availability;
mod config;
mod detect;
mod error;
mod invert;
mod milr;
mod plan;
mod serialize;
mod solve;
mod storage;

pub use config::{MilrConfig, WeightGrid};
pub use detect::{DetectionReport, LayerCheck};
pub use error::MilrError;
pub use milr::{Milr, RecoveryOutcome, RecoveryReport};
pub use plan::{InversionPlan, LayerPlan, ProtectionPlan, SolvingPlan};
pub use solve::{reset_ulp_snap_searches, ulp_snap_searches};
pub use storage::StorageReport;

/// Result alias for MILR operations.
pub type Result<T> = std::result::Result<T, MilrError>;

pub(crate) mod semantics;
