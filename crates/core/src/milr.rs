use crate::artifacts::{golden_input, Artifacts};
use crate::detect::{run_detection, run_detection_subset, DetectionReport};
use crate::invert::backward_to;
use crate::plan::{ProtectionPlan, SolvingPlan};
use crate::semantics::{milr_forward_range, SegmentView};
use crate::solve::{solve_bias, solve_conv_partial, solve_dense, SolveOutcome};
use crate::storage::StorageReport;
use crate::{MilrConfig, MilrError, Result};
use milr_nn::{Layer, Sequential};
use milr_tensor::Tensor;
use rayon::prelude::*;
use std::time::Duration;

/// How one flagged layer fared during recovery.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryOutcome {
    /// Parameters fully re-solved (exact up to `f32` rounding).
    Full,
    /// CRC-guided partial recovery: only the flagged weights were
    /// re-solved.
    Partial {
        /// Number of weights re-solved.
        solved: usize,
    },
    /// Minimum-norm least-squares approximation — the under-determined
    /// whole-layer case of partial-recoverability conv layers (the
    /// paper's "N/A — convolution partial recoverable" rows).
    MinNorm {
        /// Number of approximated unknowns.
        unknowns: usize,
    },
    /// Recovery failed (propagation or solve error); parameters left
    /// unchanged.
    Failed {
        /// Human-readable reason.
        reason: String,
    },
}

impl RecoveryOutcome {
    /// True when the heal re-solved the layer's parameters themselves —
    /// fully or CRC-guided partially — rather than approximating them.
    /// [`RecoveryOutcome::MinNorm`] and [`RecoveryOutcome::Failed`] are
    /// *not* exact: the layer is beyond MILR's recoverable set (the
    /// paper's partial-recoverability limit, §V-B), and a replicated
    /// deployment should restore it from a peer's certified store
    /// instead of accepting the approximation.
    pub fn is_exact(&self) -> bool {
        matches!(
            self,
            RecoveryOutcome::Full | RecoveryOutcome::Partial { .. }
        )
    }
}

impl From<SolveOutcome> for RecoveryOutcome {
    fn from(o: SolveOutcome) -> Self {
        match o {
            SolveOutcome::Full => RecoveryOutcome::Full,
            SolveOutcome::Partial { solved } => RecoveryOutcome::Partial { solved },
            SolveOutcome::MinNorm { unknowns } => RecoveryOutcome::MinNorm { unknowns },
        }
    }
}

/// Output of the recovery phase.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Per-flagged-layer outcomes, in recovery order.
    pub outcomes: Vec<(usize, RecoveryOutcome)>,
    /// Wall-clock duration of the recovery pass (Figure 11's quantity).
    pub elapsed: Duration,
}

impl RecoveryReport {
    /// True when every flagged layer recovered fully.
    pub fn all_full(&self) -> bool {
        self.outcomes
            .iter()
            .all(|(_, o)| matches!(o, RecoveryOutcome::Full))
    }

    /// True when every flagged layer's heal was exact
    /// ([`RecoveryOutcome::is_exact`]).
    pub fn all_exact(&self) -> bool {
        self.outcomes.iter().all(|(_, o)| o.is_exact())
    }

    /// Indices of the layers whose heal was **not** exact — the
    /// irrecoverable set a replicated deployment hands to peer repair.
    pub fn irrecoverable(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .filter(|(_, o)| !o.is_exact())
            .map(|(i, _)| *i)
            .collect()
    }
}

/// A MILR protection instance: the plan plus every artifact of the
/// initialization phase, ready to run detection and recovery against
/// the live model.
///
/// See the [crate docs](crate) for the end-to-end flow.
#[derive(Debug, Clone)]
pub struct Milr {
    config: MilrConfig,
    plan: ProtectionPlan,
    artifacts: Artifacts,
    /// Structural fingerprint of the protected model, used to reject
    /// detection/recovery against a different architecture.
    fingerprint: Vec<(String, usize)>,
}

impl Milr {
    /// Runs the initialization phase on a (presumed golden) model:
    /// plans checkpoints and dummy data, then computes and stores all
    /// artifacts.
    ///
    /// # Errors
    ///
    /// Returns [`MilrError::ModelMismatch`] for empty models and
    /// propagates tensor/geometry failures.
    pub fn protect(model: &Sequential, config: MilrConfig) -> Result<Self> {
        let plan = ProtectionPlan::build(model, &config)?;
        let artifacts = Artifacts::build(model, &plan, &config)?;
        Ok(Milr {
            config,
            plan,
            artifacts,
            fingerprint: fingerprint(model),
        })
    }

    /// Reassembles an instance from deserialized parts (the
    /// persistence path; see `serialize.rs`).
    pub(crate) fn from_parts(
        config: MilrConfig,
        plan: ProtectionPlan,
        artifacts: Artifacts,
        fingerprint: Vec<(String, usize)>,
    ) -> Self {
        Milr {
            config,
            plan,
            artifacts,
            fingerprint,
        }
    }

    /// The stored artifacts (serialization access).
    pub(crate) fn artifacts(&self) -> &Artifacts {
        &self.artifacts
    }

    /// The structural fingerprint (serialization access).
    pub(crate) fn fingerprint_data(&self) -> &[(String, usize)] {
        &self.fingerprint
    }

    /// The protection plan.
    pub fn plan(&self) -> &ProtectionPlan {
        &self.plan
    }

    /// The configuration.
    pub fn config(&self) -> &MilrConfig {
        &self.config
    }

    /// Storage accounting for the stored artifacts (Tables V/VII/IX).
    pub fn storage_report(&self, model: &Sequential) -> StorageReport {
        StorageReport::compute(model, &self.plan, &self.artifacts)
    }

    /// Runs the error-detection phase against the live model.
    ///
    /// # Errors
    ///
    /// Returns [`MilrError::ModelMismatch`] when the model's structure
    /// differs from the protected one.
    pub fn detect(&self, model: &Sequential) -> Result<DetectionReport> {
        self.check_structure(model)?;
        run_detection(model, &self.artifacts, &self.config)
    }

    /// Indices of the layers that carry a detection check (convolution,
    /// dense and bias layers), ascending — the index space
    /// [`Milr::detect_layers`] accepts.
    pub fn checkable_layers(&self) -> Vec<usize> {
        self.plan
            .layers
            .iter()
            .filter(|l| l.solving.is_some())
            .map(|l| l.index)
            .collect()
    }

    /// Number of layers carrying a detection check, without
    /// materializing the index list — the denominator of the integrity
    /// engine's fast-path accounting (how many layers a subset verify
    /// skipped relative to a full re-detect).
    pub fn checkable_count(&self) -> usize {
        self.plan
            .layers
            .iter()
            .filter(|l| l.solving.is_some())
            .count()
    }

    /// Runs the error-detection phase on a subset of layers — the
    /// online-scrubbing entry point: a background scrubber can sweep
    /// the model incrementally, checking a few layers per tick instead
    /// of the whole model, because every layer's check is independent
    /// (private seeded input vs stored probes). A full pass over
    /// [`Milr::checkable_layers`] in any chunking flags exactly what
    /// one [`Milr::detect`] call would.
    ///
    /// # Errors
    ///
    /// Returns [`MilrError::ModelMismatch`] for structural mismatches
    /// or when `layers` contains an index without a detection check.
    pub fn detect_layers(&self, model: &Sequential, layers: &[usize]) -> Result<DetectionReport> {
        self.check_structure(model)?;
        run_detection_subset(model, &self.artifacts, &self.config, layers)
    }

    /// Runs the recovery phase: heals every layer flagged in `report`,
    /// writing recovered parameters into `model` in place.
    ///
    /// Layers are processed in ascending order within each checkpoint
    /// segment; with multiple erroneous layers in one segment the
    /// propagated golden values degrade and recovery becomes
    /// best-effort, exactly as the paper describes (§V-A).
    ///
    /// # Errors
    ///
    /// Returns [`MilrError::ModelMismatch`] for structural mismatches.
    /// Per-layer failures do not abort the pass; they are recorded as
    /// [`RecoveryOutcome::Failed`].
    pub fn recover(
        &self,
        model: &mut Sequential,
        report: &DetectionReport,
    ) -> Result<RecoveryReport> {
        self.recover_layers(model, &report.flagged)
    }

    /// Iterative refinement (an extension beyond the paper): re-runs
    /// recovery over the same flagged set up to `iterations` times.
    ///
    /// When two erroneous layers share one checkpoint segment, each
    /// one's golden input/output propagates through the other's corrupt
    /// parameters, so a single pass is only best-effort (§V-A). Because
    /// every pass replaces each flagged layer with the exact solution
    /// *given its neighbours' current state*, alternating passes
    /// contract toward the golden fixed point; iteration stops early
    /// once all outcomes are `Full` and parameters stop moving.
    ///
    /// # Errors
    ///
    /// See [`Milr::recover`].
    pub fn recover_iterative(
        &self,
        model: &mut Sequential,
        flagged: &[usize],
        iterations: usize,
    ) -> Result<RecoveryReport> {
        let start = std::time::Instant::now();
        let mut last = RecoveryReport {
            outcomes: Vec::new(),
            elapsed: Duration::ZERO,
        };
        let mut previous: Option<Vec<Tensor>> = None;
        for _ in 0..iterations.max(1) {
            last = self.recover_layers(model, flagged)?;
            let snapshot: Vec<Tensor> = flagged
                .iter()
                .filter_map(|&i| model.layers()[i].params().cloned())
                .collect();
            if let Some(prev) = &previous {
                let converged = prev
                    .iter()
                    .zip(snapshot.iter())
                    .all(|(a, b)| a.approx_eq(b, 1e-7, 1e-9));
                if converged {
                    break;
                }
            }
            previous = Some(snapshot);
        }
        Ok(RecoveryReport {
            outcomes: last.outcomes,
            elapsed: start.elapsed(),
        })
    }

    /// Recovers an explicit list of layer indices (useful for targeted
    /// healing, e.g. the whole-layer-corruption experiment where the
    /// corrupted layer is known).
    ///
    /// With `config.parallel`, independent checkpoint **segments** are
    /// recovered concurrently: each worker clones only its segment's
    /// `[seg_start, seg_end)` layer window (propagation never reads
    /// outside that range, so the window sees exactly what the serial
    /// pass would — transient memory is `O(largest segment)` per
    /// worker, not `O(model)`) and the healed parameters are written
    /// back in segment order. Nested LU fan-out inside each worker is
    /// capped at `cores / active_segments` via
    /// [`milr_linalg::with_thread_budget`], so segment parallelism
    /// cannot oversubscribe the machine. Within a segment the solve
    /// order stays serial, because same-segment layers propagate
    /// through one another (§V-A). The resulting outcomes and
    /// parameters are bit-identical to the serial path.
    ///
    /// # Errors
    ///
    /// See [`Milr::recover`].
    pub fn recover_layers(
        &self,
        model: &mut Sequential,
        flagged: &[usize],
    ) -> Result<RecoveryReport> {
        self.check_structure(model)?;
        let start = std::time::Instant::now();
        let mut flagged: Vec<usize> = flagged.to_vec();
        flagged.sort_unstable();
        flagged.dedup();
        let work: Vec<(usize, usize, Vec<usize>)> = self
            .plan
            .segments()
            .into_iter()
            .filter_map(|(seg_start, seg_end)| {
                let in_segment: Vec<usize> = flagged
                    .iter()
                    .copied()
                    .filter(|&i| i >= seg_start && i < seg_end)
                    .collect();
                (!in_segment.is_empty()).then_some((seg_start, seg_end, in_segment))
            })
            .collect();
        let mut outcomes = Vec::new();
        if self.config.parallel && work.len() > 1 {
            let base: &Sequential = model;
            let cores = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1);
            let lu_budget = (cores / work.len()).max(1);
            type SegmentResult = Result<Vec<(usize, RecoveryOutcome, Option<Tensor>)>>;
            let results: Vec<SegmentResult> = work
                .par_iter()
                .map(|(seg_start, seg_end, in_segment)| {
                    milr_linalg::with_thread_budget(lu_budget, || {
                        let mut view = SegmentView::from_model(base, *seg_start, *seg_end);
                        let outs = self
                            .recover_segment(base, &mut view, *seg_start, *seg_end, in_segment)?;
                        let indices: Vec<usize> = outs.iter().map(|(i, _)| *i).collect();
                        Ok(outs
                            .into_iter()
                            .zip(view.extract_params(&indices))
                            .map(|((i, outcome), (_, params))| (i, outcome, params))
                            .collect())
                    })
                })
                .collect();
            for result in results {
                for (i, outcome, params) in result? {
                    if let (Some(healed), Some(dst)) = (params, model.layers_mut()[i].params_mut())
                    {
                        *dst = healed;
                    }
                    outcomes.push((i, outcome));
                }
            }
        } else {
            for (seg_start, seg_end, in_segment) in &work {
                let mut view = SegmentView::from_model(model, *seg_start, *seg_end);
                let outs =
                    self.recover_segment(model, &mut view, *seg_start, *seg_end, in_segment)?;
                let indices: Vec<usize> = outs.iter().map(|(i, _)| *i).collect();
                for ((i, outcome), (_, params)) in
                    outs.into_iter().zip(view.extract_params(&indices))
                {
                    if let (Some(healed), Some(dst)) = (params, model.layers_mut()[i].params_mut())
                    {
                        *dst = healed;
                    }
                    outcomes.push((i, outcome));
                }
            }
        }
        Ok(RecoveryReport {
            outcomes,
            elapsed: start.elapsed(),
        })
    }

    /// Heals every flagged layer of one checkpoint segment, in
    /// ascending order, inside the segment's layer window. The shared
    /// serial core of both recovery paths; `model` is only consulted
    /// for the segment-start anchor (the golden input when the segment
    /// opens the network).
    fn recover_segment(
        &self,
        model: &Sequential,
        view: &mut SegmentView,
        seg_start: usize,
        seg_end: usize,
        in_segment: &[usize],
    ) -> Result<Vec<(usize, RecoveryOutcome)>> {
        let input_anchor = self.anchor(model, seg_start)?;
        let output_anchor = self
            .artifacts
            .full_checkpoints
            .get(&seg_end)
            .ok_or_else(|| MilrError::CorruptArtifacts(format!("missing checkpoint {seg_end}")))?
            .clone();
        let mut outcomes = Vec::new();
        for &f in in_segment {
            let outcome =
                self.recover_one(view, f, &input_anchor, seg_start, &output_anchor, seg_end);
            outcomes.push((
                f,
                match outcome {
                    Ok(o) => o.into(),
                    Err(e) => RecoveryOutcome::Failed {
                        reason: e.to_string(),
                    },
                },
            ));
        }
        Ok(outcomes)
    }

    fn anchor(&self, model: &Sequential, position: usize) -> Result<Tensor> {
        if position == 0 {
            Ok(golden_input(model, &self.config))
        } else {
            self.artifacts
                .full_checkpoints
                .get(&position)
                .cloned()
                .ok_or_else(|| {
                    MilrError::CorruptArtifacts(format!("missing checkpoint {position}"))
                })
        }
    }

    fn recover_one(
        &self,
        view: &mut SegmentView,
        index: usize,
        input_anchor: &Tensor,
        seg_start: usize,
        output_anchor: &Tensor,
        seg_end: usize,
    ) -> Result<SolveOutcome> {
        // Golden input: forward from the segment-start anchor.
        let x = milr_forward_range(view, input_anchor, seg_start, index)?;
        // Golden output: inverse passes from the segment-end anchor.
        let y = backward_to(
            view,
            &self.plan,
            &self.artifacts,
            &self.config,
            output_anchor,
            seg_end,
            index,
        )?;
        let solving = self.plan.layers[index].solving.ok_or_else(|| {
            MilrError::ModelMismatch(format!("layer {index} has no parameters to recover"))
        })?;
        let (recovered, outcome) = match (view.layer(index), solving) {
            (Layer::Dense { weights }, plan @ SolvingPlan::DenseFull { .. }) => {
                let n = weights.shape().dim(0);
                let p = weights.shape().dim(1);
                solve_dense(&x, &y, plan, &self.artifacts, &self.config, index, n, p)?
            }
            // Both conv plans route through the CRC-guided solver: it
            // degrades to a full solve when every weight is flagged, and
            // the stored grids verify the healed bank bit-exactly. This
            // matters even for `ConvFull` geometry — a conv fed by
            // another conv has a rank-deficient im2col system, where a
            // blind full solve returns consistent-but-wrong weights.
            (Layer::Conv2D { filters, spec }, SolvingPlan::ConvFull | SolvingPlan::ConvPartial) => {
                solve_conv_partial(&x, &y, filters, spec, &self.artifacts, &self.config, index)?
            }
            (Layer::Bias { bias }, SolvingPlan::Bias) => {
                solve_bias(&x, &y, bias.numel(), self.config.weight_grid)?
            }
            (layer, plan) => {
                return Err(MilrError::ModelMismatch(format!(
                    "layer {index} ({}) does not match its solving plan {plan:?}",
                    layer.kind_name()
                )))
            }
        };
        let params = view
            .layer_mut(index)
            .params_mut()
            .ok_or_else(|| MilrError::ModelMismatch(format!("layer {index} lost its params")))?;
        *params = recovered;
        Ok(outcome)
    }

    fn check_structure(&self, model: &Sequential) -> Result<()> {
        let fp = fingerprint(model);
        if fp != self.fingerprint {
            return Err(MilrError::ModelMismatch(format!(
                "model structure changed since protection ({} vs {} layers)",
                fp.len(),
                self.fingerprint.len()
            )));
        }
        Ok(())
    }
}

fn fingerprint(model: &Sequential) -> Vec<(String, usize)> {
    model
        .layers()
        .iter()
        .map(|l| (l.kind_name().to_string(), l.param_count()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_fault::{corrupt_layer, inject_rber, inject_whole_weight, FaultRng};
    use milr_nn::Activation;
    use milr_tensor::{ConvSpec, Padding, PoolSpec, TensorRng};

    /// A miniature network exercising every layer type MILR handles.
    ///
    /// Sized so that the second convolution (partial recoverability,
    /// F²Z = 54 > G² = 16) still has enough equations per filter to
    /// re-solve CRC-flagged weights exactly for small error counts.
    fn test_model(seed: u64) -> Sequential {
        let mut rng = TensorRng::new(seed);
        let mut m = Sequential::new(vec![14, 14, 1]);
        let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
        m.push(Layer::conv2d_random(3, 1, 6, spec, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(6)).unwrap();
        m.push(Layer::Activation(Activation::Relu)).unwrap();
        m.push(Layer::MaxPool2D(PoolSpec::new(2, 2).unwrap()))
            .unwrap();
        m.push(Layer::conv2d_random(3, 6, 4, spec, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(4)).unwrap();
        m.push(Layer::Activation(Activation::Relu)).unwrap();
        m.push(Layer::Flatten).unwrap();
        m.push(Layer::dense_random(4 * 4 * 4, 8, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(8)).unwrap();
        m.push(Layer::Activation(Activation::Softmax)).unwrap();
        m
    }

    fn protect(m: &Sequential) -> Milr {
        Milr::protect(m, MilrConfig::default()).unwrap()
    }

    fn params_eq(a: &Sequential, b: &Sequential, rtol: f32, atol: f32) -> bool {
        a.layers()
            .iter()
            .zip(b.layers().iter())
            .all(|(x, y)| match (x.params(), y.params()) {
                (Some(p), Some(q)) => p.approx_eq(q, rtol, atol),
                (None, None) => true,
                _ => false,
            })
    }

    #[test]
    fn clean_network_detects_clean_and_recovers_nothing() {
        let mut m = test_model(1);
        let milr = protect(&m);
        let report = milr.detect(&m).unwrap();
        assert!(report.is_clean());
        let rec = milr.recover(&mut m, &report).unwrap();
        assert!(rec.outcomes.is_empty());
    }

    #[test]
    fn heals_single_corrupted_conv_layer() {
        let mut m = test_model(2);
        let golden = m.clone();
        let milr = protect(&m);
        m.layers_mut()[0].params_mut().unwrap().data_mut()[10] = 47.0;
        let report = milr.detect(&m).unwrap();
        assert_eq!(report.flagged, vec![0]);
        let rec = milr.recover(&mut m, &report).unwrap();
        // CRC localizes the single bad weight: exact partial recovery.
        assert!(
            matches!(rec.outcomes[0].1, RecoveryOutcome::Partial { solved } if solved >= 1),
            "{:?}",
            rec.outcomes
        );
        assert!(params_eq(&m, &golden, 1e-4, 1e-5));
    }

    #[test]
    fn heals_corrupted_dense_layer() {
        let mut m = test_model(3);
        let golden = m.clone();
        let milr = protect(&m);
        let w = m.layers_mut()[8].params_mut().unwrap().data_mut();
        inject_whole_weight(w, 0.2, &mut FaultRng::seed(5));
        let report = milr.detect(&m).unwrap();
        assert_eq!(report.flagged, vec![8]);
        milr.recover(&mut m, &report).unwrap();
        assert!(params_eq(&m, &golden, 1e-4, 1e-5));
    }

    #[test]
    fn heals_corrupted_bias_layer() {
        let mut m = test_model(4);
        let golden = m.clone();
        let milr = protect(&m);
        m.layers_mut()[5].params_mut().unwrap().data_mut()[1] = -3.5;
        let report = milr.detect(&m).unwrap();
        assert_eq!(report.flagged, vec![5]);
        milr.recover(&mut m, &report).unwrap();
        assert!(params_eq(&m, &golden, 1e-4, 1e-5));
    }

    #[test]
    fn heals_whole_layer_corruption_of_recoverable_layers() {
        // Layer 8 (dense) fully randomized -> exact recovery expected.
        let mut m = test_model(5);
        let golden = m.clone();
        let milr = protect(&m);
        corrupt_layer(
            m.layers_mut()[8].params_mut().unwrap().data_mut(),
            &mut FaultRng::seed(9),
        );
        let report = milr.detect(&m).unwrap();
        assert!(report.flagged.contains(&8));
        let rec = milr.recover(&mut m, &report).unwrap();
        assert!(rec.all_full(), "{:?}", rec.outcomes);
        assert!(params_eq(&m, &golden, 1e-4, 1e-5));
    }

    #[test]
    fn heals_multiple_layers_in_different_segments() {
        let mut m = test_model(6);
        let golden = m.clone();
        let milr = protect(&m);
        // Conv 0 (segment before the pool checkpoint) and dense 8
        // (after it).
        m.layers_mut()[0].params_mut().unwrap().data_mut()[3] += 5.0;
        m.layers_mut()[8].params_mut().unwrap().data_mut()[7] -= 4.0;
        let report = milr.detect(&m).unwrap();
        assert_eq!(report.flagged, vec![0, 8]);
        let rec = milr.recover(&mut m, &report).unwrap();
        for (_, outcome) in &rec.outcomes {
            assert!(
                matches!(
                    outcome,
                    RecoveryOutcome::Full | RecoveryOutcome::Partial { .. }
                ),
                "{:?}",
                rec.outcomes
            );
        }
        assert!(params_eq(&m, &golden, 1e-4, 1e-5));
    }

    #[test]
    fn heals_rber_injection_with_self_recovery_extension() {
        // With the dense self-recovery extension, the dense layer heals
        // independently of its segment-mates, so iterative recovery
        // converges to the golden parameters even with several
        // erroneous layers in one checkpoint segment.
        let mut m = test_model(7);
        let golden = m.clone();
        let milr = Milr::protect(
            &m,
            MilrConfig {
                dense_self_recovery: true,
                ..MilrConfig::default()
            },
        )
        .unwrap();
        let mut rng = FaultRng::seed(11);
        for layer in m.layers_mut() {
            if let Some(p) = layer.params_mut() {
                inject_rber(p.data_mut(), 1e-3, &mut rng);
            }
        }
        let report = milr.detect(&m).unwrap();
        assert!(!report.is_clean());
        milr.recover_iterative(&mut m, &report.flagged, 4).unwrap();
        assert!(
            params_eq(&m, &golden, 1e-3, 1e-4),
            "parameters did not converge to golden"
        );
    }

    #[test]
    fn paper_mode_multi_error_segment_is_best_effort() {
        // Paper-faithful configuration: several erroneous layers inside
        // one checkpoint segment recover approximately, not exactly
        // (§V-A: "full self-healing cannot be guaranteed. However,
        // error recovery is invoked regardless"). What IS guaranteed:
        // layers that are alone in their segment heal exactly.
        let mut m = test_model(7);
        let golden = m.clone();
        let milr = protect(&m);
        let mut rng = FaultRng::seed(18);
        for layer in m.layers_mut() {
            if let Some(p) = layer.params_mut() {
                inject_rber(p.data_mut(), 1e-3, &mut rng);
            }
        }
        let report = milr.detect(&m).unwrap();
        // Seed 18 flags conv 0 (alone among checkpoints 0..3) plus conv
        // 4 and dense 8, which share segment 3..11.
        assert_eq!(report.flagged, vec![0, 4, 8]);
        let rec = milr.recover(&mut m, &report).unwrap();
        assert_eq!(rec.outcomes.len(), 3);
        // Singleton-segment layer healed exactly.
        assert!(m.layers()[0].params().unwrap().approx_eq(
            golden.layers()[0].params().unwrap(),
            1e-4,
            1e-5
        ));
        // Shared-segment layers were re-solved (parameters moved toward
        // reproducing the golden flow) — recovery reports them, and the
        // recovered network still reproduces the stored golden output
        // checkpoint reasonably (best-effort contract).
        for (_, outcome) in &rec.outcomes {
            assert!(!matches!(outcome, RecoveryOutcome::Failed { .. }));
        }
    }

    #[test]
    fn rejects_structurally_different_model() {
        let m = test_model(8);
        let milr = protect(&m);
        let other = test_model(9); // same structure, different weights: OK
        assert!(milr.detect(&other).is_ok());
        let mut rng = TensorRng::new(1);
        let mut different = Sequential::new(vec![4]);
        different
            .push(Layer::dense_random(4, 2, &mut rng).unwrap())
            .unwrap();
        assert!(matches!(
            milr.detect(&different),
            Err(MilrError::ModelMismatch(_))
        ));
    }

    #[test]
    fn recover_layers_accepts_explicit_targets() {
        let mut m = test_model(10);
        let golden = m.clone();
        let milr = protect(&m);
        corrupt_layer(
            m.layers_mut()[9].params_mut().unwrap().data_mut(),
            &mut FaultRng::seed(3),
        );
        // Heal without running detection (targeted recovery).
        let rec = milr.recover_layers(&mut m, &[9]).unwrap();
        assert!(rec.all_full());
        assert!(params_eq(&m, &golden, 1e-4, 1e-5));
    }

    #[test]
    fn reports_failed_recovery_without_aborting() {
        let mut m = test_model(11);
        let milr = protect(&m);
        // Ask to recover a parameterless layer: Failed outcome, no
        // panic, other layers unaffected.
        let rec = milr.recover_layers(&mut m, &[2]).unwrap();
        assert_eq!(rec.outcomes.len(), 1);
        assert!(matches!(rec.outcomes[0].1, RecoveryOutcome::Failed { .. }));
    }

    #[test]
    fn incremental_detection_covers_the_model() {
        let mut m = test_model(13);
        let milr = protect(&m);
        let checkable = milr.checkable_layers();
        // Conv 0/4, bias 1/5/9, dense 8.
        assert_eq!(checkable, vec![0, 1, 4, 5, 8, 9]);
        m.layers_mut()[4].params_mut().unwrap().data_mut()[2] = 31.0;
        // Sweep two layers per tick, as an online scrubber would.
        let mut flagged = Vec::new();
        for chunk in checkable.chunks(2) {
            flagged.extend(milr.detect_layers(&m, chunk).unwrap().flagged);
        }
        flagged.sort_unstable();
        assert_eq!(flagged, milr.detect(&m).unwrap().flagged);
        assert_eq!(flagged, vec![4]);
    }

    #[test]
    fn storage_report_is_consistent() {
        let m = test_model(12);
        let milr = protect(&m);
        let report = milr.storage_report(&m);
        assert!(report.milr_bytes() > 0);
        assert_eq!(report.backup_bytes, m.param_count() * 4);
        assert_eq!(report.ecc_bytes, m.param_count() * 7 / 8);
    }
}
