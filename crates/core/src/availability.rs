//! Availability–accuracy trade-off model (paper §V-E, Equation 6,
//! Figure 12).
//!
//! A network spends time in detection passes and recovery, which costs
//! availability; running detection less often lets more errors
//! accumulate between heals, which costs minimum accuracy. The paper
//! models the trade-off with
//!
//! ```text
//! f(a) = A( [ (1/(1−a)) · (Td·I) + Tr ]⁻¹-ish budget arithmetic )
//! ```
//!
//! concretely instantiated here as: given a target availability `a`,
//! the time budget for protection work per error interval is
//! `(1 − a) · T_be`; after reserving the recovery time `T_r`, the budget
//! buys `I = ((1−a)·T_be − T_r) / T_d` detection passes per interval, so
//! errors accumulate for `T_be / I` before being healed and the minimum
//! accuracy is `A(errors_per_interval / I)` with `A(·)` a linear
//! degradation from the error-free accuracy to the accuracy after one
//! year of accumulated errors (the paper's stated assumptions: DRAM
//! field error rate of 75,000 errors per 10⁹ device-hours per Mbit,
//! detection running twice between errors, linear `A`).

/// Parameters of the availability model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityModel {
    /// Detection (identification) time `T_d` in seconds — Table X.
    pub detection_time: f64,
    /// Recovery time `T_r` in seconds for the expected per-interval
    /// errors — Figure 11.
    pub recovery_time: f64,
    /// Mean time between errors `T_be` in seconds.
    pub time_between_errors: f64,
    /// Error-free (normalized) accuracy, `A(0)`.
    pub base_accuracy: f64,
    /// Normalized accuracy after one year of unrecovered accumulation,
    /// `A(N_year)`.
    pub year_accuracy: f64,
    /// Expected errors in one year (defines the slope of `A`).
    pub errors_per_year: f64,
}

/// The paper's worst-case DRAM field error rate: 75,000 errors per 10⁹
/// device-hours per Mbit [Schroeder et al., SIGMETRICS'09].
pub const ERRORS_PER_BILLION_DEVICE_HOURS_PER_MBIT: f64 = 75_000.0;

/// Seconds in a (non-leap) year.
pub const SECONDS_PER_YEAR: f64 = 365.0 * 24.0 * 3600.0;

impl AvailabilityModel {
    /// Builds the model from a network's memory footprint and measured
    /// MILR timings, using the paper's error-rate assumption.
    ///
    /// `weight_mbits` is the protected memory in megabits;
    /// `accuracy_drop_per_error` the linear accuracy loss per
    /// accumulated error (fraction of normalized accuracy).
    pub fn from_network(
        weight_mbits: f64,
        detection_time: f64,
        recovery_time: f64,
        base_accuracy: f64,
        accuracy_drop_per_error: f64,
    ) -> Self {
        let errors_per_hour = ERRORS_PER_BILLION_DEVICE_HOURS_PER_MBIT / 1e9 * weight_mbits;
        let time_between_errors = 3600.0 / errors_per_hour;
        let errors_per_year = errors_per_hour * 24.0 * 365.0;
        let year_accuracy = (base_accuracy - accuracy_drop_per_error * errors_per_year).max(0.0);
        AvailabilityModel {
            detection_time,
            recovery_time,
            time_between_errors,
            base_accuracy,
            year_accuracy,
            errors_per_year,
        }
    }

    /// The linear accuracy function `A(n)` for `n` accumulated errors.
    pub fn accuracy_after_errors(&self, n: f64) -> f64 {
        if self.errors_per_year <= 0.0 {
            return self.base_accuracy;
        }
        let slope = (self.base_accuracy - self.year_accuracy) / self.errors_per_year;
        (self.base_accuracy - slope * n).max(0.0)
    }

    /// The detection/heal period `P` affordable at availability `a`:
    /// each cycle takes `T_d + T_r` of downtime, so `a = 1 − (T_d +
    /// T_r)/P` and `P = (T_d + T_r)/(1 − a)`.
    pub fn cycle_period(&self, availability: f64) -> f64 {
        (self.detection_time + self.recovery_time) / (1.0 - availability)
    }

    /// Detection passes per error interval at availability `a`
    /// (Equation 6's `I`): `T_be / P`.
    pub fn detection_runs_per_interval(&self, availability: f64) -> f64 {
        self.time_between_errors / self.cycle_period(availability)
    }

    /// Minimum (normalized) accuracy sustained at availability `a` —
    /// the curve of Figure 12.
    ///
    /// Concrete instantiation of Equation 6: MILR runs a
    /// detection-and-heal cycle every `P = (T_d + T_r)/(1 − a)` seconds;
    /// errors arrive every `T_be` seconds and accumulate unhealed for at
    /// most one period, so the worst-case accumulated error count is
    /// `P / T_be` and the sustained minimum accuracy is `A(P / T_be)`.
    /// Demanding more availability stretches the period and lets more
    /// errors pile up — the downward-bending trade-off of Figure 12.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < a < 1`.
    pub fn min_accuracy(&self, availability: f64) -> f64 {
        assert!(
            availability > 0.0 && availability < 1.0,
            "availability must be in (0, 1)"
        );
        let period = self.cycle_period(availability);
        self.accuracy_after_errors(period / self.time_between_errors)
    }

    /// Inverse query: the availability achievable while sustaining at
    /// least `target` minimum accuracy (bisection over the monotone
    /// trade-off; the paper's "user A" lookup).
    pub fn availability_for_accuracy(&self, target: f64) -> f64 {
        let (mut lo, mut hi) = (1e-9, 1.0 - 1e-9);
        // min_accuracy is non-increasing in availability.
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.min_accuracy(mid) >= target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Sweeps the availability axis, returning `(availability,
    /// min_accuracy)` pairs for the Figure 12 curve.
    ///
    /// The sweep is anchored to this deployment's interesting region:
    /// from one detection cycle per error interval (`P = T_be`, maximum
    /// useful protection) out to one cycle per 10⁴ error intervals
    /// (errors pile up), concentrating samples near the knee.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        let overhead = self.detection_time + self.recovery_time;
        // Availability when healing every error interval / every 1e4
        // intervals.
        let a_lo = (1.0 - overhead / self.time_between_errors).clamp(1e-9, 1.0 - 1e-12);
        let a_hi = (1.0 - overhead / (1e4 * self.time_between_errors)).clamp(a_lo, 1.0 - 1e-12);
        (0..points)
            .map(|i| {
                let t = i as f64 / (points.saturating_sub(1).max(1)) as f64;
                // Log-interpolate the unavailability between the anchors.
                let u = (1.0 - a_lo).ln() * (1.0 - t) + (1.0 - a_hi).ln() * t;
                let a = 1.0 - u.exp();
                (a, self.min_accuracy(a))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AvailabilityModel {
        AvailabilityModel::from_network(
            53.4, // MNIST network ≈ 1.67M params × 32 bits
            0.010, 1.0, 0.992, 1e-6,
        )
    }

    #[test]
    fn error_rate_arithmetic() {
        let m = model();
        // 75000/1e9 per hour per Mbit × 53.4 Mbit ≈ 4e-3 errors/hour.
        let per_hour = 3600.0 / m.time_between_errors;
        assert!((per_hour - 75_000.0 / 1e9 * 53.4).abs() < 1e-9);
        assert!(m.errors_per_year > 30.0 && m.errors_per_year < 40.0);
    }

    #[test]
    fn accuracy_function_is_linear_and_clamped() {
        let m = model();
        assert_eq!(m.accuracy_after_errors(0.0), m.base_accuracy);
        let half = m.accuracy_after_errors(m.errors_per_year / 2.0);
        assert!(half < m.base_accuracy && half > m.year_accuracy);
        assert_eq!(m.accuracy_after_errors(1e18), 0.0);
    }

    #[test]
    fn tradeoff_is_monotone() {
        let m = model();
        // Higher availability -> fewer detection runs -> lower minimum
        // accuracy.
        let a_low = m.min_accuracy(0.99);
        let a_high = m.min_accuracy(0.999_999);
        assert!(a_low >= a_high, "{a_low} vs {a_high}");
        let runs_low = m.detection_runs_per_interval(0.99);
        let runs_high = m.detection_runs_per_interval(0.999_999);
        assert!(runs_low > runs_high);
    }

    #[test]
    fn inverse_query_consistent() {
        let m = model();
        let target = m.base_accuracy * 0.99999;
        let a = m.availability_for_accuracy(target);
        assert!(a > 0.0 && a < 1.0);
        assert!(m.min_accuracy(a) >= target * 0.999_999);
    }

    #[test]
    fn curve_is_well_formed() {
        let m = model();
        let curve = m.curve(32);
        assert_eq!(curve.len(), 32);
        for (a, acc) in &curve {
            assert!(*a > 0.9 && *a < 1.0);
            assert!(*acc >= 0.0 && *acc <= m.base_accuracy);
        }
        // Availabilities increase along the sweep.
        for w in curve.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    #[should_panic(expected = "availability must be in")]
    fn min_accuracy_validates_input() {
        model().min_accuracy(1.5);
    }
}
