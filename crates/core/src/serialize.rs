//! Binary (de)serialization of a protection instance — the bytes a
//! persistent store keeps in its **error-resistant** artifact section
//! (paper §III: checkpoints, CRC grids, bias sums and dummy outputs
//! live on SSD/HDD/persistent memory, not in the error-prone weight
//! substrate).
//!
//! The format is a versioned, hand-rolled little-endian codec (the
//! workspace's serde stub has no serializer): fixed-width scalars,
//! length-prefixed sequences, and bit-exact `f32`/`f64` payloads so a
//! round-tripped [`Milr`] detects and recovers exactly like the
//! original. The reader is fully bounds-checked — corrupt or truncated
//! input yields [`MilrError::CorruptArtifacts`], never a panic — which
//! the store's property tests lean on.

use crate::artifacts::Artifacts;
use crate::plan::{InversionPlan, LayerPlan, ProtectionPlan, SolvingPlan};
use crate::{Milr, MilrConfig, MilrError, Result, WeightGrid};
use milr_ecc::{Crc2d, Crc2dCodes};
use milr_tensor::Tensor;
use std::collections::BTreeMap;

/// Format version of [`Milr::to_bytes`]. Version 2 appended the
/// weight-grid tag to the config record.
const VERSION: u32 = 2;

// ---------------------------------------------------------------- writer

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn f32s(&mut self, vs: &[f32]) {
        self.usize(vs.len());
        for &v in vs {
            self.f32(v);
        }
    }

    fn u32s(&mut self, vs: &[u32]) {
        self.usize(vs.len());
        for &v in vs {
            self.u32(v);
        }
    }

    fn tensor(&mut self, t: &Tensor) {
        let dims = t.shape().dims();
        self.usize(dims.len());
        for &d in dims {
            self.usize(d);
        }
        self.f32s(t.data());
    }
}

// ---------------------------------------------------------------- reader

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn truncated(what: &str) -> MilrError {
    MilrError::CorruptArtifacts(format!("serialized artifacts truncated reading {what}"))
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(truncated(what));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// A length prefix, sanity-bounded by the bytes actually remaining
    /// (each element needs at least `min_elem_bytes`), so corrupt
    /// prefixes cannot trigger huge allocations.
    fn len(&mut self, min_elem_bytes: usize, what: &str) -> Result<usize> {
        let n = self.u64(what)?;
        let cap = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if n > cap {
            return Err(MilrError::CorruptArtifacts(format!(
                "implausible length {n} reading {what}"
            )));
        }
        Ok(n as usize)
    }

    fn usize(&mut self, what: &str) -> Result<usize> {
        Ok(self.u64(what)? as usize)
    }

    fn f32(&mut self, what: &str) -> Result<f32> {
        Ok(f32::from_bits(self.u32(what)?))
    }

    fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn str(&mut self, what: &str) -> Result<String> {
        let n = self.len(1, what)?;
        String::from_utf8(self.take(n, what)?.to_vec())
            .map_err(|_| MilrError::CorruptArtifacts(format!("non-UTF-8 string in {what}")))
    }

    fn f32s(&mut self, what: &str) -> Result<Vec<f32>> {
        let n = self.len(4, what)?;
        (0..n).map(|_| self.f32(what)).collect()
    }

    fn u32s(&mut self, what: &str) -> Result<Vec<u32>> {
        let n = self.len(4, what)?;
        (0..n).map(|_| self.u32(what)).collect()
    }

    fn tensor(&mut self, what: &str) -> Result<Tensor> {
        let ndim = self.len(8, what)?;
        let dims: Vec<usize> = (0..ndim).map(|_| self.usize(what)).collect::<Result<_>>()?;
        let data = self.f32s(what)?;
        Tensor::from_vec(data, &dims)
            .map_err(|e| MilrError::CorruptArtifacts(format!("bad tensor in {what}: {e}")))
    }
}

// ---------------------------------------------------------------- codec

fn write_config(w: &mut Writer, c: &MilrConfig) {
    w.u64(c.seed);
    w.f32(c.rtol);
    w.f32(c.atol);
    w.usize(c.flow_batch);
    w.usize(c.crc_group);
    w.u8(c.dense_self_recovery as u8);
    w.u8(c.parallel as u8);
    w.u8(match c.weight_grid {
        WeightGrid::F32 => 0,
        WeightGrid::Int8 => 1,
        WeightGrid::Fp16 => 2,
    });
}

fn read_config(r: &mut Reader) -> Result<MilrConfig> {
    Ok(MilrConfig {
        seed: r.u64("config.seed")?,
        rtol: r.f32("config.rtol")?,
        atol: r.f32("config.atol")?,
        flow_batch: r.usize("config.flow_batch")?,
        crc_group: r.usize("config.crc_group")?,
        dense_self_recovery: r.u8("config.dense_self_recovery")? != 0,
        parallel: r.u8("config.parallel")? != 0,
        weight_grid: match r.u8("config.weight_grid")? {
            0 => WeightGrid::F32,
            1 => WeightGrid::Int8,
            2 => WeightGrid::Fp16,
            t => {
                return Err(MilrError::CorruptArtifacts(format!(
                    "unknown weight-grid tag {t}"
                )))
            }
        },
    })
}

fn write_plan(w: &mut Writer, p: &ProtectionPlan) {
    w.usize(p.layers.len());
    for l in &p.layers {
        w.usize(l.index);
        w.str(&l.kind);
        w.usize(l.param_count);
        match l.solving {
            None => w.u8(0),
            Some(SolvingPlan::DenseFull { dummy_rows }) => {
                w.u8(1);
                w.usize(dummy_rows);
            }
            Some(SolvingPlan::ConvFull) => w.u8(2),
            Some(SolvingPlan::ConvPartial) => w.u8(3),
            Some(SolvingPlan::Bias) => w.u8(4),
        }
        match l.inversion {
            InversionPlan::Native => w.u8(0),
            InversionPlan::DummyData { extra } => {
                w.u8(1);
                w.usize(extra);
            }
            InversionPlan::NotNeeded => w.u8(2),
            InversionPlan::Checkpointed => w.u8(3),
        }
    }
    w.usize(p.checkpoints.len());
    for &c in &p.checkpoints {
        w.usize(c);
    }
}

fn read_plan(r: &mut Reader) -> Result<ProtectionPlan> {
    let n = r.len(18, "plan.layers")?;
    let mut layers = Vec::with_capacity(n);
    for _ in 0..n {
        let index = r.usize("plan.index")?;
        let kind = r.str("plan.kind")?;
        let param_count = r.usize("plan.param_count")?;
        let solving = match r.u8("plan.solving")? {
            0 => None,
            1 => Some(SolvingPlan::DenseFull {
                dummy_rows: r.usize("plan.dummy_rows")?,
            }),
            2 => Some(SolvingPlan::ConvFull),
            3 => Some(SolvingPlan::ConvPartial),
            4 => Some(SolvingPlan::Bias),
            t => {
                return Err(MilrError::CorruptArtifacts(format!(
                    "unknown solving tag {t}"
                )))
            }
        };
        let inversion = match r.u8("plan.inversion")? {
            0 => InversionPlan::Native,
            1 => InversionPlan::DummyData {
                extra: r.usize("plan.extra")?,
            },
            2 => InversionPlan::NotNeeded,
            3 => InversionPlan::Checkpointed,
            t => {
                return Err(MilrError::CorruptArtifacts(format!(
                    "unknown inversion tag {t}"
                )))
            }
        };
        layers.push(LayerPlan {
            index,
            kind,
            param_count,
            solving,
            inversion,
        });
    }
    let n = r.len(8, "plan.checkpoints")?;
    let checkpoints = (0..n)
        .map(|_| r.usize("plan.checkpoint"))
        .collect::<Result<_>>()?;
    Ok(ProtectionPlan {
        layers,
        checkpoints,
    })
}

fn write_tensor_map(w: &mut Writer, m: &BTreeMap<usize, Tensor>) {
    w.usize(m.len());
    for (&k, t) in m {
        w.usize(k);
        w.tensor(t);
    }
}

fn read_tensor_map(r: &mut Reader, what: &str) -> Result<BTreeMap<usize, Tensor>> {
    let n = r.len(16, what)?;
    let mut m = BTreeMap::new();
    for _ in 0..n {
        let k = r.usize(what)?;
        m.insert(k, r.tensor(what)?);
    }
    Ok(m)
}

fn write_artifacts(w: &mut Writer, a: &Artifacts) {
    write_tensor_map(w, &a.full_checkpoints);
    w.usize(a.partial_checkpoints.len());
    for (&k, v) in &a.partial_checkpoints {
        w.usize(k);
        w.f32s(v);
    }
    w.usize(a.bias_sums.len());
    for (&k, &v) in &a.bias_sums {
        w.usize(k);
        w.f64(v);
    }
    w.usize(a.crc_grids.len());
    for (&k, grids) in &a.crc_grids {
        w.usize(k);
        w.usize(grids.len());
        for g in grids {
            let cfg = g.config();
            w.usize(cfg.rows());
            w.usize(cfg.cols());
            w.usize(cfg.group());
            w.u32s(g.row_codes());
            w.u32s(g.col_codes());
        }
    }
    write_tensor_map(w, &a.dense_dummy_outputs);
    write_tensor_map(w, &a.dense_dummy_col_outputs);
    write_tensor_map(w, &a.conv_dummy_outputs);
}

fn read_artifacts(r: &mut Reader) -> Result<Artifacts> {
    let full_checkpoints = read_tensor_map(r, "artifacts.full_checkpoints")?;
    let n = r.len(16, "artifacts.partial_checkpoints")?;
    let mut partial_checkpoints = BTreeMap::new();
    for _ in 0..n {
        let k = r.usize("artifacts.partial_checkpoints")?;
        partial_checkpoints.insert(k, r.f32s("artifacts.partial_checkpoints")?);
    }
    let n = r.len(16, "artifacts.bias_sums")?;
    let mut bias_sums = BTreeMap::new();
    for _ in 0..n {
        let k = r.usize("artifacts.bias_sums")?;
        bias_sums.insert(k, r.f64("artifacts.bias_sums")?);
    }
    let n = r.len(16, "artifacts.crc_grids")?;
    let mut crc_grids = BTreeMap::new();
    for _ in 0..n {
        let k = r.usize("artifacts.crc_grids")?;
        let count = r.len(40, "artifacts.crc_grids")?;
        let mut grids = Vec::with_capacity(count);
        for _ in 0..count {
            let rows = r.usize("crc.rows")?;
            let cols = r.usize("crc.cols")?;
            let group = r.usize("crc.group")?;
            if rows == 0 || cols == 0 || group == 0 || rows > 1 << 20 || cols > 1 << 20 {
                return Err(MilrError::CorruptArtifacts(format!(
                    "implausible CRC grid geometry {rows}x{cols}/{group}"
                )));
            }
            let row_codes = r.u32s("crc.row_codes")?;
            let col_codes = r.u32s("crc.col_codes")?;
            let cfg = Crc2d::with_group(rows, cols, group);
            grids.push(
                Crc2dCodes::from_parts(cfg, row_codes, col_codes)
                    .map_err(MilrError::CorruptArtifacts)?,
            );
        }
        crc_grids.insert(k, grids);
    }
    let dense_dummy_outputs = read_tensor_map(r, "artifacts.dense_dummy_outputs")?;
    let dense_dummy_col_outputs = read_tensor_map(r, "artifacts.dense_dummy_col_outputs")?;
    let conv_dummy_outputs = read_tensor_map(r, "artifacts.conv_dummy_outputs")?;
    Ok(Artifacts {
        full_checkpoints,
        partial_checkpoints,
        bias_sums,
        crc_grids,
        dense_dummy_outputs,
        dense_dummy_col_outputs,
        conv_dummy_outputs,
    })
}

impl Milr {
    /// Serializes the whole protection instance — configuration, plan,
    /// artifacts and model fingerprint — to a self-contained byte
    /// buffer (the persistent store's artifact section).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(VERSION);
        write_config(&mut w, self.config());
        write_plan(&mut w, self.plan());
        write_artifacts(&mut w, self.artifacts());
        let fp = self.fingerprint_data();
        w.usize(fp.len());
        for (kind, params) in fp {
            w.str(kind);
            w.usize(*params);
        }
        w.buf
    }

    /// Deserializes a buffer produced by [`Milr::to_bytes`]. The result
    /// is bit-equivalent to the original instance: identical detection
    /// verdicts and identical recovered parameters.
    ///
    /// # Errors
    ///
    /// [`MilrError::CorruptArtifacts`] for truncated, corrupt, or
    /// version-mismatched input. Never panics on malformed bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Milr> {
        let mut r = Reader::new(bytes);
        let version = r.u32("version")?;
        if version != VERSION {
            return Err(MilrError::CorruptArtifacts(format!(
                "unsupported artifact format version {version} (expected {VERSION})"
            )));
        }
        let config = read_config(&mut r)?;
        let plan = read_plan(&mut r)?;
        let artifacts = read_artifacts(&mut r)?;
        let n = r.len(16, "fingerprint")?;
        let mut fingerprint = Vec::with_capacity(n);
        for _ in 0..n {
            let kind = r.str("fingerprint.kind")?;
            let params = r.usize("fingerprint.params")?;
            fingerprint.push((kind, params));
        }
        if r.remaining() != 0 {
            return Err(MilrError::CorruptArtifacts(format!(
                "{} trailing bytes after artifacts",
                r.remaining()
            )));
        }
        Ok(Milr::from_parts(config, plan, artifacts, fingerprint))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_nn::{Activation, Layer, Sequential};
    use milr_tensor::{ConvSpec, Padding, PoolSpec, TensorRng};

    fn model() -> Sequential {
        let mut rng = TensorRng::new(11);
        let mut m = Sequential::new(vec![10, 10, 1]);
        let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
        m.push(Layer::conv2d_random(3, 1, 6, spec, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(6)).unwrap();
        m.push(Layer::Activation(Activation::Relu)).unwrap();
        m.push(Layer::MaxPool2D(PoolSpec::new(2, 2).unwrap()))
            .unwrap();
        m.push(Layer::conv2d_random(3, 6, 4, spec, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::Flatten).unwrap();
        m.push(Layer::dense_random(2 * 2 * 4, 5, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(5)).unwrap();
        m
    }

    #[test]
    fn roundtrip_preserves_detection_and_recovery() {
        let mut m = model();
        let golden = m.clone();
        let milr = Milr::protect(&m, MilrConfig::default()).unwrap();
        let bytes = milr.to_bytes();
        let restored = Milr::from_bytes(&bytes).unwrap();
        assert_eq!(restored.plan(), milr.plan());
        assert_eq!(restored.config(), milr.config());
        // Bit-identical second serialization.
        assert_eq!(restored.to_bytes(), bytes);
        // The restored instance detects and heals exactly like the
        // original.
        m.layers_mut()[0].params_mut().unwrap().data_mut()[3] = 42.0;
        let report = restored.detect(&m).unwrap();
        assert_eq!(report.flagged, vec![0]);
        restored.recover_layers(&mut m, &report.flagged).unwrap();
        let a = m.layers()[0].params().unwrap();
        let b = golden.layers()[0].params().unwrap();
        assert!(a.approx_eq(b, 1e-4, 1e-5));
    }

    #[test]
    fn rejects_unknown_version() {
        let milr = Milr::protect(&model(), MilrConfig::default()).unwrap();
        let mut bytes = milr.to_bytes();
        bytes[0] = 0xEE;
        assert!(matches!(
            Milr::from_bytes(&bytes),
            Err(MilrError::CorruptArtifacts(_))
        ));
    }

    #[test]
    fn truncation_errors_at_every_length() {
        let milr = Milr::protect(&model(), MilrConfig::default()).unwrap();
        let bytes = milr.to_bytes();
        // Every strict prefix must fail cleanly (no panic, no silent
        // success).
        for cut in (0..bytes.len()).step_by(97).chain([bytes.len() - 1]) {
            assert!(
                Milr::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let milr = Milr::protect(&model(), MilrConfig::default()).unwrap();
        let mut bytes = milr.to_bytes();
        bytes.extend_from_slice(&[0, 1, 2]);
        assert!(Milr::from_bytes(&bytes).is_err());
    }
}
