//! Storage-overhead accounting (paper Tables V, VII, IX).
//!
//! MILR's artifacts live in error-resistant storage (SSD/HDD/persistent
//! memory, §III); the tables compare their size against a full backup
//! copy of the weights and against per-word SECDED ECC bits.

use crate::artifacts::Artifacts;
use crate::plan::ProtectionPlan;
use milr_nn::Sequential;
use serde::{Deserialize, Serialize};

/// Byte-level breakdown of one protection instance's storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageReport {
    /// A redundant copy of all weights (the "Backup Weights" column):
    /// `params × 4`.
    pub backup_bytes: usize,
    /// SECDED overhead (the "ECC" column): `params × 7 / 8`.
    pub ecc_bytes: usize,
    /// Full checkpoints (including the network-output checkpoint).
    pub full_checkpoint_bytes: usize,
    /// Partial checkpoints (one `f32` per filter / output column).
    pub partial_checkpoint_bytes: usize,
    /// Stored dummy outputs (dense solving rows, dense inversion
    /// columns, conv dummy filters).
    pub dummy_output_bytes: usize,
    /// 2-D CRC codes for partial-recoverability conv layers.
    pub crc_bytes: usize,
    /// Bias parameter sums (8 bytes each).
    pub bias_sum_bytes: usize,
    /// Stored seeds (golden flow + detection root), 8 bytes each.
    pub seed_bytes: usize,
}

impl StorageReport {
    /// Computes the report from a protected model's plan and artifacts.
    pub(crate) fn compute(
        model: &Sequential,
        _plan: &ProtectionPlan,
        artifacts: &Artifacts,
    ) -> Self {
        let params = model.param_count();
        let full_checkpoint_bytes: usize = artifacts
            .full_checkpoints
            .values()
            .map(|t| t.numel() * 4)
            .sum();
        let partial_checkpoint_bytes: usize = artifacts
            .partial_checkpoints
            .values()
            .map(|v| v.len() * 4)
            .sum();
        let dummy_output_bytes: usize = artifacts
            .dense_dummy_outputs
            .values()
            .chain(artifacts.dense_dummy_col_outputs.values())
            .chain(artifacts.conv_dummy_outputs.values())
            .map(|t| t.numel() * 4)
            .sum();
        let crc_bytes: usize = artifacts
            .crc_grids
            .values()
            .flat_map(|grids| grids.iter().map(|g| g.storage_bytes()))
            .sum();
        StorageReport {
            backup_bytes: params * 4,
            ecc_bytes: params * 7 / 8,
            full_checkpoint_bytes,
            partial_checkpoint_bytes,
            dummy_output_bytes,
            crc_bytes,
            bias_sum_bytes: artifacts.bias_sums.len() * 8,
            seed_bytes: 2 * 8,
        }
    }

    /// Total MILR storage (the "MILR" column).
    pub fn milr_bytes(&self) -> usize {
        self.full_checkpoint_bytes
            + self.partial_checkpoint_bytes
            + self.dummy_output_bytes
            + self.crc_bytes
            + self.bias_sum_bytes
            + self.seed_bytes
    }

    /// ECC + MILR combined (the "ECC & MILR" column).
    pub fn ecc_and_milr_bytes(&self) -> usize {
        self.ecc_bytes + self.milr_bytes()
    }

    /// MILR storage as a fraction of the backup-copy alternative
    /// (< 1 means MILR is cheaper, as in Tables VII/IX).
    pub fn fraction_of_backup(&self) -> f64 {
        self.milr_bytes() as f64 / self.backup_bytes.max(1) as f64
    }

    /// Renders the report as a flat JSON object — the machine-readable
    /// twin of [`table_row`](StorageReport::table_row), emitted into
    /// the fig-binary JSON artifacts next to the availability numbers
    /// (hand-rolled: the workspace's serde stub has no serializer).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"backup_bytes\":{},\"ecc_bytes\":{},\"full_checkpoint_bytes\":{},",
                "\"partial_checkpoint_bytes\":{},\"dummy_output_bytes\":{},",
                "\"crc_bytes\":{},\"bias_sum_bytes\":{},\"seed_bytes\":{},",
                "\"milr_bytes\":{},\"ecc_and_milr_bytes\":{},\"fraction_of_backup\":{:.6}}}"
            ),
            self.backup_bytes,
            self.ecc_bytes,
            self.full_checkpoint_bytes,
            self.partial_checkpoint_bytes,
            self.dummy_output_bytes,
            self.crc_bytes,
            self.bias_sum_bytes,
            self.seed_bytes,
            self.milr_bytes(),
            self.ecc_and_milr_bytes(),
            self.fraction_of_backup(),
        )
    }

    /// Formats the paper's storage-table row (values in MB).
    pub fn table_row(&self) -> String {
        let mb = |b: usize| b as f64 / 1_000_000.0;
        format!(
            "{:>10.2} {:>8.2} {:>8.2} {:>10.2}",
            mb(self.backup_bytes),
            mb(self.ecc_bytes),
            mb(self.milr_bytes()),
            mb(self.ecc_and_milr_bytes()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Milr, MilrConfig};
    use milr_nn::{Layer, Sequential};
    use milr_tensor::TensorRng;

    fn report_for(n: usize, p: usize) -> StorageReport {
        let mut rng = TensorRng::new(1);
        let mut m = Sequential::new(vec![n]);
        m.push(Layer::dense_random(n, p, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(p)).unwrap();
        let milr = Milr::protect(&m, MilrConfig::default()).unwrap();
        milr.storage_report(&m)
    }

    #[test]
    fn dense_storage_breakdown() {
        let r = report_for(16, 4);
        // Backup: (16·4 + 4) weights × 4 bytes.
        assert_eq!(r.backup_bytes, 68 * 4);
        assert_eq!(r.ecc_bytes, 68 * 7 / 8);
        // Dummy solving rows: (16−1) rows × 4 cols × 4 bytes.
        assert_eq!(r.dummy_output_bytes, 15 * 4 * 4);
        // Partial checkpoint: 4 column probes.
        assert_eq!(r.partial_checkpoint_bytes, 16);
        assert_eq!(r.bias_sum_bytes, 8);
        // Output checkpoint: (1, 4) tensor.
        assert_eq!(r.full_checkpoint_bytes, 16);
        assert!(r.milr_bytes() > 0);
        assert_eq!(r.ecc_and_milr_bytes(), r.ecc_bytes + r.milr_bytes());
    }

    #[test]
    fn dense_dummy_outputs_dominate_when_n_large() {
        // The MNIST phenomenon (Table V): MILR ≈ backup size because the
        // wide dense layer's dummy outputs cost ~N·P floats.
        let r = report_for(64, 32);
        let dummy = r.dummy_output_bytes as f64;
        assert!(dummy / r.milr_bytes() as f64 > 0.8);
        assert!(r.fraction_of_backup() > 0.5);
    }

    #[test]
    fn table_row_formats_mb() {
        let r = report_for(8, 2);
        let row = r.table_row();
        assert_eq!(row.split_whitespace().count(), 4);
    }

    #[test]
    fn json_carries_totals() {
        let r = report_for(8, 2);
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(&format!("\"milr_bytes\":{}", r.milr_bytes())));
        assert!(json.contains(&format!("\"backup_bytes\":{}", r.backup_bytes)));
        assert!(json.contains("\"fraction_of_backup\":"));
        assert_eq!(json.matches('{').count(), 1);
    }
}
