//! Serial-vs-parallel determinism: the rayon-parallel detection and
//! recovery paths must return **bit-identical** results to the serial
//! reference paths — same flags, same deviations, same outcomes, same
//! healed parameter bits.

use milr_core::{Milr, MilrConfig};
use milr_fault::{corrupt_layer, inject_rber, inject_whole_weight, FaultRng};
use milr_nn::{Activation, Layer, Sequential};
use milr_tensor::{ConvSpec, Padding, PoolSpec, TensorRng};

/// A model with several checkpoint segments and every layer kind, so
/// both parallel axes (layers for detect, segments for recover) are
/// exercised.
fn test_model(seed: u64) -> Sequential {
    let mut rng = TensorRng::new(seed);
    let mut m = Sequential::new(vec![14, 14, 1]);
    let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
    m.push(Layer::conv2d_random(3, 1, 6, spec, &mut rng).unwrap())
        .unwrap();
    m.push(Layer::bias_zero(6)).unwrap();
    m.push(Layer::Activation(Activation::Relu)).unwrap();
    m.push(Layer::MaxPool2D(PoolSpec::new(2, 2).unwrap()))
        .unwrap();
    m.push(Layer::conv2d_random(3, 6, 4, spec, &mut rng).unwrap())
        .unwrap();
    m.push(Layer::bias_zero(4)).unwrap();
    m.push(Layer::Activation(Activation::Relu)).unwrap();
    m.push(Layer::Flatten).unwrap();
    m.push(Layer::dense_random(4 * 4 * 4, 8, &mut rng).unwrap())
        .unwrap();
    m.push(Layer::bias_zero(8)).unwrap();
    m.push(Layer::Activation(Activation::Softmax)).unwrap();
    m
}

fn configs() -> (MilrConfig, MilrConfig) {
    let parallel = MilrConfig {
        parallel: true,
        ..MilrConfig::default()
    };
    let serial = MilrConfig {
        parallel: false,
        ..MilrConfig::default()
    };
    (parallel, serial)
}

fn param_bits(model: &Sequential) -> Vec<Vec<u32>> {
    model
        .layers()
        .iter()
        .filter_map(|l| l.params())
        .map(|p| p.data().iter().map(|x| x.to_bits()).collect())
        .collect()
}

fn corrupt(model: &mut Sequential, seed: u64) {
    let mut rng = FaultRng::seed(seed);
    for layer in model.layers_mut() {
        if let Some(p) = layer.params_mut() {
            inject_rber(p.data_mut(), 1e-3, &mut rng);
        }
    }
}

#[test]
fn detection_reports_are_bit_identical() {
    for model_seed in [1u64, 7, 42] {
        let golden = test_model(model_seed);
        let (par_cfg, ser_cfg) = configs();
        let par = Milr::protect(&golden, par_cfg).unwrap();
        let ser = Milr::protect(&golden, ser_cfg).unwrap();
        for fault_seed in 0u64..6 {
            let mut m = golden.clone();
            corrupt(&mut m, fault_seed);
            let rp = par.detect(&m).unwrap();
            let rs = ser.detect(&m).unwrap();
            assert_eq!(rp.flagged, rs.flagged, "seed {fault_seed}");
            // Compare checks field-by-field with bit-exact deviations
            // (elapsed legitimately differs).
            assert_eq!(rp.checks.len(), rs.checks.len());
            for (a, b) in rp.checks.iter().zip(rs.checks.iter()) {
                assert_eq!(a.layer, b.layer);
                assert_eq!(a.kind, b.kind);
                assert_eq!(a.flagged, b.flagged);
                assert_eq!(
                    a.max_deviation.to_bits(),
                    b.max_deviation.to_bits(),
                    "layer {} deviation differs",
                    a.layer
                );
            }
        }
    }
}

#[test]
fn recovery_is_bit_identical_across_segments() {
    // Corrupt layers in *different* checkpoint segments so the parallel
    // path actually fans out.
    let golden = test_model(3);
    let (par_cfg, ser_cfg) = configs();
    let par = Milr::protect(&golden, par_cfg).unwrap();
    let ser = Milr::protect(&golden, ser_cfg).unwrap();
    for fault_seed in 0u64..6 {
        let mut mp = golden.clone();
        corrupt(&mut mp, fault_seed);
        let mut ms = mp.clone();

        let report_p = par.detect(&mp).unwrap();
        let report_s = ser.detect(&ms).unwrap();
        assert_eq!(report_p.flagged, report_s.flagged);

        let rec_p = par.recover(&mut mp, &report_p).unwrap();
        let rec_s = ser.recover(&mut ms, &report_s).unwrap();
        let outcomes_p: Vec<_> = rec_p
            .outcomes
            .iter()
            .map(|(i, o)| (*i, o.clone()))
            .collect();
        let outcomes_s: Vec<_> = rec_s
            .outcomes
            .iter()
            .map(|(i, o)| (*i, o.clone()))
            .collect();
        assert_eq!(outcomes_p, outcomes_s, "seed {fault_seed}");
        assert_eq!(
            param_bits(&mp),
            param_bits(&ms),
            "healed parameters differ for seed {fault_seed}"
        );
    }
}

#[test]
fn whole_weight_and_layer_corruption_recover_identically() {
    let golden = test_model(9);
    let (par_cfg, ser_cfg) = configs();
    let par = Milr::protect(&golden, par_cfg).unwrap();
    let ser = Milr::protect(&golden, ser_cfg).unwrap();

    // Whole-weight errors across all layers.
    let mut mp = golden.clone();
    let mut rng = FaultRng::seed(5);
    for layer in mp.layers_mut() {
        if let Some(p) = layer.params_mut() {
            inject_whole_weight(p.data_mut(), 5e-3, &mut rng);
        }
    }
    let mut ms = mp.clone();
    let report_p = par.detect(&mp).unwrap();
    par.recover(&mut mp, &report_p).unwrap();
    let report_s = ser.detect(&ms).unwrap();
    ser.recover(&mut ms, &report_s).unwrap();
    assert_eq!(param_bits(&mp), param_bits(&ms));

    // Explicit multi-segment target list (conv 0 and dense 8).
    let mut mp = golden.clone();
    corrupt_layer(
        mp.layers_mut()[0].params_mut().unwrap().data_mut(),
        &mut FaultRng::seed(8),
    );
    corrupt_layer(
        mp.layers_mut()[8].params_mut().unwrap().data_mut(),
        &mut FaultRng::seed(9),
    );
    let mut ms = mp.clone();
    let rp = par.recover_layers(&mut mp, &[0, 8]).unwrap();
    let rs = ser.recover_layers(&mut ms, &[0, 8]).unwrap();
    assert_eq!(rp.outcomes, rs.outcomes);
    assert_eq!(param_bits(&mp), param_bits(&ms));
}
