//! MILR across layer topologies beyond the paper's three evaluation
//! networks: same padding, stride 2, average pooling, zero padding,
//! sigmoid/tanh activations, dropout — every layer variant the
//! substrate supports must protect, detect and heal.

use milr_core::{Milr, MilrConfig, RecoveryOutcome};
use milr_fault::{corrupt_layer, FaultRng};
use milr_nn::{Activation, Layer, Sequential};
use milr_tensor::{ConvSpec, Padding, PoolSpec, Tensor, TensorRng};

fn protect(model: &Sequential) -> Milr {
    Milr::protect(model, MilrConfig::default()).expect("protect")
}

fn corrupt_and_heal(model: &mut Sequential, milr: &Milr, layer: usize) -> RecoveryOutcome {
    corrupt_layer(
        model.layers_mut()[layer]
            .params_mut()
            .expect("param layer")
            .data_mut(),
        &mut FaultRng::seed(layer as u64 + 100),
    );
    let report = milr.detect(model).expect("detect");
    assert!(
        report.flagged.contains(&layer),
        "layer {layer} not flagged: {:?}",
        report.flagged
    );
    let rec = milr.recover(model, &report).expect("recover");
    rec.outcomes
        .iter()
        .find(|(l, _)| *l == layer)
        .map(|(_, o)| o.clone())
        .expect("outcome recorded")
}

fn params_close(a: &Sequential, b: &Sequential, layer: usize) -> bool {
    a.layers()[layer]
        .params()
        .unwrap()
        .approx_eq(b.layers()[layer].params().unwrap(), 1e-3, 1e-4)
}

#[test]
fn same_padding_conv_heals() {
    // Same padding puts zero rows into the im2col system; recovery must
    // handle the border equations.
    let mut rng = TensorRng::new(41);
    let spec = ConvSpec::new(3, 1, Padding::Same).unwrap();
    let mut m = Sequential::new(vec![8, 8, 1]);
    m.push(Layer::conv2d_random(3, 1, 4, spec, &mut rng).unwrap())
        .unwrap();
    m.push(Layer::bias_zero(4)).unwrap();
    let golden = m.clone();
    let milr = protect(&m);
    let outcome = corrupt_and_heal(&mut m, &milr, 0);
    assert!(
        matches!(
            outcome,
            RecoveryOutcome::Full | RecoveryOutcome::Partial { .. }
        ),
        "{outcome:?}"
    );
    assert!(params_close(&m, &golden, 0));
}

#[test]
fn stride_two_conv_heals() {
    let mut rng = TensorRng::new(42);
    let spec = ConvSpec::new(3, 2, Padding::Valid).unwrap();
    let mut m = Sequential::new(vec![11, 11, 1]);
    m.push(Layer::conv2d_random(3, 1, 4, spec, &mut rng).unwrap())
        .unwrap();
    let golden = m.clone();
    let milr = protect(&m);
    // G = (11-3)/2+1 = 5; G² = 25 >= F²Z = 9: determined system.
    let outcome = corrupt_and_heal(&mut m, &milr, 0);
    assert!(
        matches!(
            outcome,
            RecoveryOutcome::Full | RecoveryOutcome::Partial { .. }
        ),
        "{outcome:?}"
    );
    assert!(params_close(&m, &golden, 0));
}

#[test]
fn avg_pool_gets_checkpoint_and_downstream_heals() {
    let mut rng = TensorRng::new(43);
    let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
    let mut m = Sequential::new(vec![10, 10, 1]);
    m.push(Layer::conv2d_random(3, 1, 4, spec, &mut rng).unwrap())
        .unwrap();
    m.push(Layer::AvgPool2D(PoolSpec::new(2, 2).unwrap()))
        .unwrap();
    m.push(Layer::Flatten).unwrap();
    m.push(Layer::dense_random(4 * 4 * 4, 6, &mut rng).unwrap())
        .unwrap();
    let golden = m.clone();
    let milr = protect(&m);
    // Average pooling is non-invertible: checkpoint at its position.
    assert!(milr.plan().checkpoints.contains(&1));
    let outcome = corrupt_and_heal(&mut m, &milr, 3);
    assert!(matches!(outcome, RecoveryOutcome::Full), "{outcome:?}");
    assert!(params_close(&m, &golden, 3));
    // The conv before the pool heals too.
    let outcome = corrupt_and_heal(&mut m, &milr, 0);
    assert!(
        matches!(
            outcome,
            RecoveryOutcome::Full | RecoveryOutcome::Partial { .. }
        ),
        "{outcome:?}"
    );
    assert!(params_close(&m, &golden, 0));
}

#[test]
fn zero_pad_layer_is_transparent_to_recovery() {
    let mut rng = TensorRng::new(44);
    let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
    let mut m = Sequential::new(vec![6, 6, 1]);
    m.push(Layer::conv2d_random(3, 1, 4, spec, &mut rng).unwrap())
        .unwrap();
    m.push(Layer::ZeroPad2D { pad: 1 }).unwrap();
    m.push(Layer::conv2d_random(3, 4, 4, spec, &mut rng).unwrap())
        .unwrap();
    let golden = m.clone();
    let milr = protect(&m);
    // Corrupt the first conv: its output must be recovered backward
    // through the second conv AND the zero-pad layer (crop).
    let outcome = corrupt_and_heal(&mut m, &milr, 0);
    assert!(
        matches!(
            outcome,
            RecoveryOutcome::Full | RecoveryOutcome::Partial { .. }
        ),
        "{outcome:?}"
    );
    assert!(params_close(&m, &golden, 0));
}

#[test]
fn sigmoid_and_tanh_networks_protect_and_heal() {
    for activation in [Activation::Sigmoid, Activation::Tanh, Activation::Identity] {
        let mut rng = TensorRng::new(45);
        let mut m = Sequential::new(vec![6]);
        m.push(Layer::dense_random(6, 5, &mut rng).unwrap())
            .unwrap();
        m.push(Layer::Activation(activation)).unwrap();
        m.push(Layer::dense_random(5, 4, &mut rng).unwrap())
            .unwrap();
        let golden = m.clone();
        let milr = protect(&m);
        let outcome = corrupt_and_heal(&mut m, &milr, 0);
        assert!(matches!(outcome, RecoveryOutcome::Full), "{activation:?}");
        assert!(params_close(&m, &golden, 0), "{activation:?}");
    }
}

#[test]
fn dropout_layer_is_ignored_by_milr() {
    let mut rng = TensorRng::new(46);
    let mut m = Sequential::new(vec![8]);
    m.push(Layer::dense_random(8, 6, &mut rng).unwrap())
        .unwrap();
    m.push(Layer::Dropout { rate: 0.5 }).unwrap();
    m.push(Layer::dense_random(6, 4, &mut rng).unwrap())
        .unwrap();
    let golden = m.clone();
    let milr = protect(&m);
    // Corrupt the layer *behind* the dropout: backward pass crosses it.
    let outcome = corrupt_and_heal(&mut m, &milr, 0);
    assert!(matches!(outcome, RecoveryOutcome::Full));
    assert!(params_close(&m, &golden, 0));
}

#[test]
fn deep_dense_chain_heals_each_layer_in_turn() {
    let mut rng = TensorRng::new(47);
    let widths = [10usize, 9, 8, 7, 6];
    let mut m = Sequential::new(vec![widths[0]]);
    for w in widths.windows(2) {
        m.push(Layer::dense_random(w[0], w[1], &mut rng).unwrap())
            .unwrap();
        m.push(Layer::bias_zero(w[1])).unwrap();
        m.push(Layer::Activation(Activation::Relu)).unwrap();
    }
    let golden = m.clone();
    let milr = protect(&m);
    for layer in (0..m.len()).filter(|&i| m.layers()[i].param_count() > 0) {
        let mut victim = golden.clone();
        let outcome = corrupt_and_heal(&mut victim, &milr, layer);
        assert!(
            matches!(outcome, RecoveryOutcome::Full),
            "layer {layer}: {outcome:?}"
        );
        assert!(params_close(&victim, &golden, layer), "layer {layer}");
    }
}

#[test]
fn detection_survives_infinity_and_nan_weights() {
    let mut rng = TensorRng::new(48);
    let mut m = Sequential::new(vec![5]);
    m.push(Layer::dense_random(5, 4, &mut rng).unwrap())
        .unwrap();
    m.push(Layer::bias_zero(4)).unwrap();
    let golden = m.clone();
    let milr = protect(&m);
    for poison in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
        let mut victim = golden.clone();
        victim.layers_mut()[0].params_mut().unwrap().data_mut()[2] = poison;
        let report = milr.detect(&victim).expect("detect");
        assert!(report.flagged.contains(&0), "poison {poison} undetected");
        milr.recover(&mut victim, &report).expect("recover");
        assert!(params_close(&victim, &golden, 0), "poison {poison}");
    }
}

#[test]
fn flow_batch_config_strengthens_conv_systems() {
    // With flow_batch 4, a conv that is partial at B=1 becomes fully
    // determined (B·G² ≥ F²Z) and the plan reflects it.
    let mut rng = TensorRng::new(49);
    let spec = ConvSpec::new(3, 1, Padding::Valid).unwrap();
    let build = || {
        let mut m = Sequential::new(vec![6, 6, 4]);
        m.push(Layer::conv2d_random(3, 4, 4, spec, &mut TensorRng::new(50)).unwrap())
            .unwrap();
        m
    };
    let _ = &mut rng;
    let m = build();
    // B=1: G²=16 < F²Z=36 -> partial.
    let milr1 = Milr::protect(&m, MilrConfig::default()).unwrap();
    assert_eq!(
        format!("{:?}", milr1.plan().layers[0].solving.unwrap()),
        "ConvPartial"
    );
    // B=4: 64 >= 36 -> full.
    let milr4 = Milr::protect(
        &m,
        MilrConfig {
            flow_batch: 4,
            ..MilrConfig::default()
        },
    )
    .unwrap();
    assert_eq!(
        format!("{:?}", milr4.plan().layers[0].solving.unwrap()),
        "ConvFull"
    );
    // And the stronger system still heals.
    let mut victim = m.clone();
    victim.layers_mut()[0].params_mut().unwrap().data_mut()[7] += 9.0;
    let report = milr4.detect(&victim).unwrap();
    milr4.recover(&mut victim, &report).unwrap();
    assert!(victim.layers()[0].params().unwrap().approx_eq(
        m.layers()[0].params().unwrap(),
        1e-3,
        1e-4
    ));
}

#[test]
fn bias_only_difference_does_not_confuse_structure_check() {
    // Same structure, different weights: detect works; recovered values
    // are the *protected* network's weights, not the imposter's.
    let mut rng_a = TensorRng::new(51);
    let mut a = Sequential::new(vec![4]);
    a.push(Layer::dense_random(4, 3, &mut rng_a).unwrap())
        .unwrap();
    let milr = protect(&a);
    let mut rng_b = TensorRng::new(52);
    let mut b = Sequential::new(vec![4]);
    b.push(Layer::dense_random(4, 3, &mut rng_b).unwrap())
        .unwrap();
    let report = milr.detect(&b).expect("same structure detects fine");
    assert!(report.flagged.contains(&0), "imposter weights flagged");
    milr.recover(&mut b, &report).expect("recover");
    let healed: &Tensor = b.layers()[0].params().unwrap();
    assert!(healed.approx_eq(a.layers()[0].params().unwrap(), 1e-4, 1e-5));
}
