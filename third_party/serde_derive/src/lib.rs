//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` expansions
//! for the offline `serde` stub (see `third_party/serde`).
//!
//! The workspace annotates storage-format types with serde derives to
//! keep the (de)serialization seam visible, but nothing in-tree consumes
//! the generated impls yet — no `serde_json`, no `bincode`. Until a real
//! registry is available these derives therefore expand to nothing,
//! which keeps `#[derive(...)]` attributes and `#[serde(...)]` helper
//! attributes compiling without pulling in `syn`/`quote`.

use proc_macro::TokenStream;

/// Accepts the annotated item and emits no impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the annotated item and emits no impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
