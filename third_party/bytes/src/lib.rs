//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the *small* subset of the `bytes` API it actually uses: a growable
//! byte buffer ([`BytesMut`]) and the [`BufMut`] write trait. The
//! implementations are straightforward wrappers over `Vec<u8>`; swap
//! this path dependency for the real crate when a registry is
//! available — no call sites need to change.

#![deny(missing_docs)]

use std::ops::{Deref, DerefMut};

/// A growable, uniquely-owned byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data }
    }
}

/// Buffer write trait (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a single byte.
    fn put_u8(&mut self, b: u8);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_read_back() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_slice(&[1, 2, 3]);
        buf.put_u8(4);
        assert_eq!(buf.len(), 4);
        assert_eq!(&buf[..], &[1, 2, 3, 4]);
        assert_eq!(buf.to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn chunks_mut_via_deref() {
        let mut buf = BytesMut::new();
        buf.put_slice(&[0u8; 32]);
        for (i, chunk) in buf.chunks_mut(16).enumerate() {
            chunk[0] = i as u8 + 1;
        }
        assert_eq!(buf[0], 1);
        assert_eq!(buf[16], 2);
    }
}
