//! Offline stand-in for the [`proptest`](https://docs.rs/proptest)
//! property-testing crate.
//!
//! Implements the subset the MILR workspace's property tests use: the
//! [`proptest!`] macro over `ident in strategy` argument lists, numeric
//! range strategies, `num::*::ANY` / `bool::ANY`, tuple strategies,
//! [`collection::vec`], [`array::uniform16`], and the `prop_assert*`
//! macros. Inputs are drawn from a deterministic per-test generator
//! (seeded from the test's module path and case index), so runs are
//! reproducible; there is no shrinking — a failing case panics with the
//! generated values visible in the assertion message.

#![deny(missing_docs)]

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic input generator (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test identifier and case index.
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, usize);

impl Strategy for std::ops::Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for std::ops::Range<i32> {
    type Value = i32;
    fn sample(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty strategy range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.below(span) as i64) as i32
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit() as f32 * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Full-range strategies for primitive numeric types.
pub mod num {
    /// Strategies over `u8`.
    pub mod u8 {
        /// Any `u8`.
        pub const ANY: Any = Any;
        /// Full-range `u8` strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;
        impl crate::Strategy for Any {
            type Value = u8;
            fn sample(&self, rng: &mut crate::TestRng) -> u8 {
                rng.next_u64() as u8
            }
        }
    }

    /// Strategies over `u16`.
    pub mod u16 {
        /// Any `u16`.
        pub const ANY: Any = Any;
        /// Full-range `u16` strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;
        impl crate::Strategy for Any {
            type Value = u16;
            fn sample(&self, rng: &mut crate::TestRng) -> u16 {
                rng.next_u64() as u16
            }
        }
    }

    /// Strategies over `u32`.
    pub mod u32 {
        /// Any `u32`.
        pub const ANY: Any = Any;
        /// Full-range `u32` strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;
        impl crate::Strategy for Any {
            type Value = u32;
            fn sample(&self, rng: &mut crate::TestRng) -> u32 {
                (rng.next_u64() >> 32) as u32
            }
        }
    }

    /// Strategies over `u64`.
    pub mod u64 {
        /// Any `u64`.
        pub const ANY: Any = Any;
        /// Full-range `u64` strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;
        impl crate::Strategy for Any {
            type Value = u64;
            fn sample(&self, rng: &mut crate::TestRng) -> u64 {
                rng.next_u64()
            }
        }
    }
}

/// Strategies over `bool`.
pub mod bool {
    /// Any `bool`.
    pub const ANY: Any = Any;
    /// Fair-coin strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;
    impl crate::Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut crate::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::{Strategy, TestRng};

    /// Length specification for [`vec`]: a fixed length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector strategy over an element strategy and a length spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Array strategies.
pub mod array {
    use crate::{Strategy, TestRng};

    /// Strategy producing `[T; 16]` from an element strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform16<S>(S);

    /// 16-element array strategy (the only width the workspace uses).
    pub fn uniform16<S: Strategy>(element: S) -> Uniform16<S> {
        Uniform16(element)
    }

    impl<S: Strategy> Strategy for Uniform16<S> {
        type Value = [S::Value; 16];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }
}

/// Skips the current generated case when its precondition fails.
///
/// Expands to `continue` on the case loop, so it may only appear at the
/// top level of a property body (which is how the workspace uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts a property holds (plain `assert!` without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality (plain `assert_eq!` without shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality (plain `assert_ne!` without shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// expands to a `#[test]`-able function looping over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("bounds", 0);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..8), &mut rng);
            assert!((3..8).contains(&v));
            let f = Strategy::sample(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_array_strategies() {
        let mut rng = TestRng::deterministic("vecs", 1);
        let v = Strategy::sample(&crate::collection::vec(0u32..10, 1..6), &mut rng);
        assert!((1..6).contains(&v.len()));
        assert!(v.iter().all(|&x| x < 10));
        let fixed = Strategy::sample(&crate::collection::vec(0u32..10, 4), &mut rng);
        assert_eq!(fixed.len(), 4);
        let arr = Strategy::sample(&crate::array::uniform16(crate::num::u8::ANY), &mut rng);
        assert_eq!(arr.len(), 16);
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let a = Strategy::sample(&(0u64..1000), &mut TestRng::deterministic("x", 3));
        let b = Strategy::sample(&(0u64..1000), &mut TestRng::deterministic("x", 3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_expands_and_runs(
            n in 1usize..5,
            v in crate::collection::vec(-1.0f64..1.0, 2..9),
            pair in (0u32..4, 0u32..4),
        ) {
            prop_assert!((1..5).contains(&n));
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert_ne!(v.len(), 0);
            prop_assert_eq!(pair.0 < 4, true);
        }
    }
}
