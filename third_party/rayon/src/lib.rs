//! Offline stand-in for the [`rayon`](https://docs.rs/rayon) crate.
//!
//! Implements the slice-parallelism subset the MILR workspace uses —
//! `slice.par_iter().map(f).collect::<Vec<_>>()` — on top of
//! `std::thread::scope`. Work is split into contiguous chunks, one per
//! worker thread, and results are written into pre-allocated slots, so
//! output order always matches input order (the property the
//! bit-identical detection/recovery contract relies on).
//!
//! Unlike real rayon there is no work-stealing pool; threads are spawned
//! per call. That is the right trade-off here: the parallel sections are
//! coarse (one item = one CNN layer check or one recovery segment), so
//! spawn overhead is noise next to the work, and the workspace can swap
//! in the real crate later without touching call sites.

#![deny(missing_docs)]

use std::num::NonZeroUsize;

/// The glob-importable API surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParMap, ParallelIterator};
}

/// Number of worker threads for a parallel call over `items` items.
///
/// Honors `RAYON_NUM_THREADS` like the real crate (0 or unset means
/// "use all cores"); never exceeds the item count; uses at least two
/// threads when there is more than one item so the threaded path is
/// exercised even on single-core CI runners.
fn thread_count(items: usize) -> usize {
    if items <= 1 {
        return 1;
    }
    let configured = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0);
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    configured.unwrap_or_else(|| cores.max(2)).min(items)
}

/// Order-preserving parallel map over a slice.
pub fn parallel_map<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let threads = thread_count(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let mut slots: Vec<Option<R>> = items.iter().map(|_| None).collect();
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled by its worker"))
        .collect()
}

/// Entry point: `&[T] -> ParIter`, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by the parallel iterator.
    type Item: Sync + 'a;

    /// Borrowing parallel iterator over the collection.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
#[derive(Debug, Clone, Copy)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// The adapter surface shared by this stub's parallel iterators.
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item;

    /// Maps each element through `f` in parallel.
    fn map<R, F>(self, f: F) -> ParMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        ParMap { inner: self, f }
    }
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;
}

/// A mapped parallel iterator (the only adapter the workspace needs).
#[derive(Debug, Clone, Copy)]
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<'a, T, F, R> ParMap<ParIter<'a, T>, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Runs the map in parallel and gathers results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        parallel_map(self.inner.items, |item| (self.f)(item)).into()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [41usize];
        let out: Vec<usize> = one[..].par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn matches_serial_map_for_results() {
        let input: Vec<f64> = (0..257).map(|i| i as f64 * 0.37).collect();
        let par: Vec<f64> = input.par_iter().map(|&x| x.sin() * x).collect();
        let ser: Vec<f64> = input.iter().map(|&x| x.sin() * x).collect();
        // Bit-identical: same operations per element, no reductions.
        assert_eq!(
            par.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            ser.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let input: Vec<usize> = (0..64).collect();
        let _: Vec<()> = input
            .par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        assert!(
            ids.lock().unwrap().len() >= 2,
            "expected >= 2 worker threads"
        );
    }
}
