//! Offline stand-in for the [`rand`](https://docs.rs/rand) crate.
//!
//! Vendors only what `milr-fault` uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], plus [`Rng::gen`] / [`Rng::gen_range`].
//! The generator is SplitMix64 rather than the upstream ChaCha12 — the
//! fault-injection RNG is documented as "reproducible within a build"
//! only, so stream compatibility with upstream `rand` is not required,
//! just determinism and decent uniformity.

#![deny(missing_docs)]

/// Concrete generators.
pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        /// Advances the state and returns the next 64 random bits.
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types a generator can produce via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for u32 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Seeding constructor trait (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // One scramble round so nearby seeds diverge immediately.
        let mut rng = rngs::StdRng {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        };
        rng.next_u64();
        rng
    }
}

/// Value-drawing trait (subset of `rand::Rng`).
pub trait Rng {
    /// Draws one value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T;

    /// Uniform draw from `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize;
}

impl Rng for rngs::StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift bounded draw (Lemire); bias is negligible for
        // the test-scale spans used here.
        let x = self.next_u64();
        range.start + ((x as u128 * span as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        StdRng::seed_from_u64(3).gen_range(5..5);
    }
}
