//! Offline stand-in for the [`serde`](https://docs.rs/serde) crate.
//!
//! The workspace marks storage-format types (`Tensor`, `Layer`, CRC
//! grids, …) with `#[derive(Serialize, Deserialize)]` to keep the
//! serialization seam explicit, but no in-tree code performs actual
//! (de)serialization yet. This stub supplies the trait names and no-op
//! derive macros so those annotations compile in the offline build
//! container; swapping the path dependency for real `serde` later
//! requires no source changes.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name and role.
///
/// The stub derive does not emit impls; bound-free call sites only.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name and role.
pub trait Deserialize<'de>: Sized {}
