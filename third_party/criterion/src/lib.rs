//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! Implements the subset the workspace's benches use — `bench_function`,
//! `benchmark_group`/`bench_with_input`, `iter`, `iter_batched`,
//! `criterion_group!`/`criterion_main!` — with a simple median-of-samples
//! timer instead of criterion's full statistical machinery.
//!
//! Every completed benchmark is recorded in a process-wide registry;
//! `criterion_main!` prints a JSON summary line per benchmark after the
//! human-readable rows, and honors `CRITERION_JSON=<path>` to also write
//! the whole summary to a file (the `BENCH_substrates.json` flow).

#![deny(missing_docs)]

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Re-export of the standard black box, matching `criterion::black_box`.
pub use std::hint::black_box;

fn registry() -> &'static Mutex<Vec<(String, u128, usize)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(String, u128, usize)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Wall-clock budget per benchmark; sampling stops early once exceeded.
const TIME_BUDGET: Duration = Duration::from_secs(2);

/// Measurement context passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    recorded: Vec<u128>,
}

/// Batch sizing hint (accepted for API compatibility; sampling here is
/// always one-invocation-per-measurement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Per-iteration state of unknown size.
    PerIteration,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            recorded: Vec::new(),
        }
    }

    /// Times `routine` once per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let budget = Instant::now();
        for i in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.recorded.push(t0.elapsed().as_nanos());
            if i > 0 && budget.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }

    /// Times `routine` on fresh input from `setup`; setup is untimed.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let budget = Instant::now();
        for i in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.recorded.push(t0.elapsed().as_nanos());
            if i > 0 && budget.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }

    fn median_ns(&self) -> u128 {
        let mut v = self.recorded.clone();
        if v.is_empty() {
            return 0;
        }
        v.sort_unstable();
        v[v.len() / 2]
    }
}

/// Benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

const DEFAULT_SAMPLES: usize = 20;

fn run_one(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher::new(samples.max(1));
    f(&mut bencher);
    let median = bencher.median_ns();
    let n = bencher.recorded.len();
    println!("bench: {name:<48} median {:>12} ns  ({n} samples)", median);
    registry()
        .lock()
        .unwrap()
        .push((name.to_string(), median, n));
}

impl Criterion {
    /// Runs one benchmark closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, DEFAULT_SAMPLES, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Prints the JSON summary of every benchmark run so far and, when
    /// `CRITERION_JSON=<path>` is set, writes it to that file too.
    pub fn emit_summary() {
        let rows = registry().lock().unwrap();
        let mut json = String::from("{\"benchmarks\":[");
        for (i, (name, median, n)) in rows.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"name\":\"{name}\",\"median_ns\":{median},\"samples\":{n}}}"
            ));
        }
        json.push_str("]}");
        println!("{json}");
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("criterion: failed to write {path}: {e}");
            }
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.id);
        run_one(&name, self.samples, |b| f(b));
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        run_one(&name, self.samples, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (--bench, filters); the
            // stub runs everything unconditionally.
            $( $group(); )+
            $crate::Criterion::emit_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3)
            .bench_with_input(BenchmarkId::new("f", 7), &7usize, |b, &x| b.iter(|| x * 2));
        g.finish();
        let rows = registry().lock().unwrap();
        assert!(rows.iter().any(|(n, _, _)| n == "noop"));
        assert!(rows.iter().any(|(n, _, _)| n == "grp/f/7"));
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut b = Bencher::new(5);
        let mut setups = 0;
        b.iter_batched(
            || {
                setups += 1;
                vec![0u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, b.recorded.len());
        assert!(setups >= 1);
    }
}
